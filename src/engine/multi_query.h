#ifndef SST_ENGINE_MULTI_QUERY_H_
#define SST_ENGINE_MULTI_QUERY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dra/multi_runner.h"
#include "engine/plan_cache.h"
#include "engine/query_plan.h"
#include "engine/session.h"

namespace sst {

// Multi-query serving: a batch of N queries answered over each document in
// ONE pass. The batch compiles once into a MultiQueryPlan — per-query
// plans deduplicated through the PlanCache canonical key, fused into an
// output-annotated product automaton when every (unique) query is
// registerless — and any number of concurrent BatchSessions stream
// documents against it, each emitting all N selection counts.

// One query of a batch, in any supported front-end syntax.
struct BatchQuery {
  QuerySyntax syntax = QuerySyntax::kXPath;
  std::string text;
};

struct MultiQueryOptions {
  PlanOptions plan;  // encoding/format, shared by the whole batch

  // Eager product bound: if the full reachable product has more states,
  // the batch falls back to the lazy product. The eager tier buys the
  // fused 256-entry byte table (one load per byte for ALL queries), so
  // the cap trades compile time + table memory for scan speed.
  int eager_state_cap = 4096;

  // Lazy materialization bound: states beyond it are never interned and
  // the affected stream demotes to per-query stepping (kIndependent rung)
  // for the rest of its document.
  int lazy_state_cap = 1 << 20;

  friend bool operator==(const MultiQueryOptions&,
                         const MultiQueryOptions&) = default;
};

// The compile-once half of batch evaluation. Immutable after Compile
// (the lazy product is internally synchronized — materialization is a
// cache fill, not a logical mutation), so `shared_ptr<const
// MultiQueryPlan>` is shared across threads exactly like QueryPlan.
//
// The tier ladder, decided at compile time from the batch's verdicts:
//   kFusedProduct   every unique query registerless and the reachable
//                   product fit eager_state_cap — plus, on markup-
//                   eligible alphabets, ONE fused byte table for the
//                   whole batch;
//   kLazyProduct    every unique query registerless but the product is
//                   too big to materialize up front — states appear as
//                   documents reach them, shared by all sessions;
//   kMixed          registerless + stackless batch, every stackless
//                   member carrying a fused restricted DRA: ONE scan
//                   steps the registerless sub-product and every DRA
//                   side by side. Requires the registerless sub-product
//                   to fit eager_state_cap (the mixed tier has no lazy
//                   rung);
//   kIndependent    some query needs an unfused stackless machine or the
//                   stack baseline: one machine per unique query,
//                   stepped in lockstep.
class MultiQueryPlan {
 public:
  struct Stats {
    int num_queries = 0;  // batch size as submitted
    int num_slots = 0;    // unique queries after canonical-key dedup
    MultiTier tier = MultiTier::kIndependent;
    bool fused_byte_table = false;  // eager product fused to 256-entry table
    int eager_states = 0;           // eager product size (fused/mixed tiers)
    int lazy_states = 0;            // lazy states materialized so far (live)
    bool lazy_overflowed = false;   // some stream hit lazy_state_cap
    int stackless_members = 0;      // mixed tier: DRA members in the batch
  };

  // Compiles the batch. Queries are deduplicated by PlanCache canonical
  // key first, so textual variants of one query cost one bitmask slot and
  // one DFA; `cache` (optional) additionally shares the per-query plans
  // with the rest of the server. Never fails: batches outside the product
  // tiers get kIndependent execution.
  static std::shared_ptr<const MultiQueryPlan> Compile(
      const std::vector<BatchQuery>& queries, const Alphabet& alphabet,
      const MultiQueryOptions& options, PlanCache* cache = nullptr);

  int num_queries() const { return static_cast<int>(slot_of_.size()); }
  int num_slots() const { return static_cast<int>(slot_plans_.size()); }
  int slot_of(int query) const { return slot_of_[static_cast<size_t>(query)]; }

  const MultiQueryOptions& options() const { return options_; }
  const Alphabet& alphabet() const { return alphabet_; }
  const ScannerTables& scanner_tables() const { return scanner_tables_; }

  // Per-slot compiled plans (index = bitmask bit).
  const std::vector<std::shared_ptr<const QueryPlan>>& slot_plans() const {
    return slot_plans_;
  }

  MultiTier tier() const { return tier_; }

  // Product artifacts; null outside their tier.
  const TagDfaProduct* eager() const {
    return eager_ ? &*eager_ : nullptr;
  }
  const ByteTagDfaRunner* eager_fused() const { return eager_fused_.get(); }
  // Internally synchronized; safe to step from any number of sessions.
  LazyTagDfaProduct* lazy() const { return lazy_.get(); }
  // Mixed tier: the fused DRA of every stackless member, in member order
  // (borrowed from the slot plans); empty outside kMixed.
  const std::vector<const ByteDraRunner*>& mixed_dras() const {
    return mixed_dras_;
  }

  // Expands per-slot counts (product/bitmask order) to per-query counts
  // (submission order); duplicates of one query report the same count.
  std::vector<int64_t> ExpandCounts(
      const std::vector<int64_t>& slot_counts) const;

  // Mixed tier: reorders MultiTagDfaRunner member-order counts (product
  // mask bits first, then DRA members) into slot order for ExpandCounts.
  // Identity on every other tier, where member order IS slot order.
  std::vector<int64_t> MemberCountsToSlots(
      const std::vector<int64_t>& member_counts) const;

  // Member index -> submission-order query ids, for fanning the product
  // machine's MatchEvents (whose query_id is a member index, in counts()
  // order: product mask bits first, then DRA members) out to the queries
  // as submitted. Textual duplicates of one query all appear under their
  // shared member, so a CountingSink fed through this mapping reports
  // exactly query_matches().
  std::vector<std::vector<int32_t>> MemberQueryIds() const;

  Stats stats() const;

 private:
  MultiQueryPlan() = default;

  MultiQueryOptions options_;
  Alphabet alphabet_;
  ScannerTables scanner_tables_;

  std::vector<int> slot_of_;  // query index -> slot
  std::vector<std::shared_ptr<const QueryPlan>> slot_plans_;
  std::vector<const TagDfa*> components_;  // borrowed from slot_plans_

  MultiTier tier_ = MultiTier::kIndependent;
  std::optional<TagDfaProduct> eager_;
  std::unique_ptr<ByteTagDfaRunner> eager_fused_;
  std::unique_ptr<LazyTagDfaProduct> lazy_;

  // Mixed tier bookkeeping: which slots ride the sub-product (in product
  // mask-bit order) and which step a fused DRA (in DRA member order).
  std::vector<int> product_slot_;
  std::vector<int> dra_slot_;
  std::vector<const ByteDraRunner*> mixed_dras_;  // borrowed from slot_plans_
};

// Remaps MatchEvents whose query_id indexes an internal id space (product
// machine members, or a single-slot session's constant 0) onto
// submission-order query ids, duplicating each event for every textual
// duplicate of the query. Events pass through in arrival order with their
// offsets untouched; ids outside the mapping are dropped.
class MatchFanOutSink : public MatchSink {
 public:
  MatchFanOutSink() = default;
  MatchFanOutSink(MatchSink* sink, std::vector<std::vector<int32_t>> ids)
      : sink_(sink), ids_(std::move(ids)) {}

  void OnMatch(const MatchEvent& event) override {
    Fire(event, /*close=*/false);
  }
  void OnSpanClose(const MatchEvent& event) override {
    Fire(event, /*close=*/true);
  }
  bool wants_spans() const override {
    return sink_ != nullptr && sink_->wants_spans();
  }

 private:
  void Fire(const MatchEvent& event, bool close) {
    if (sink_ == nullptr) return;
    const size_t member = static_cast<size_t>(event.query_id);
    if (member >= ids_.size()) return;
    for (int32_t query : ids_[member]) {
      MatchEvent remapped = event;
      remapped.query_id = query;
      if (close) {
        sink_->OnSpanClose(remapped);
      } else {
        sink_->OnMatch(remapped);
      }
    }
  }

  MatchSink* sink_ = nullptr;
  std::vector<std::vector<int32_t>> ids_;
};

// The run-many half: one document stream answering the whole batch.
// Product tiers hold ONE scanner + product machine (a MultiTagDfaRunner);
// the independent tier holds one Session per unique query, fed in
// lockstep. Single-threaded like Session; concurrency comes from many
// BatchSessions sharing the plan (and, on the lazy tier, the product).
class BatchSession {
 public:
  explicit BatchSession(std::shared_ptr<const MultiQueryPlan> plan);

  BatchSession(const BatchSession&) = delete;
  BatchSession& operator=(const BatchSession&) = delete;

  const MultiQueryPlan& plan() const { return *plan_; }
  const std::shared_ptr<const MultiQueryPlan>& plan_ptr() const {
    return plan_;
  }

  // Streaming interface (StreamingSelector semantics; fail-fast parity
  // with independent per-query sessions over the same bytes).
  bool Feed(std::string_view chunk);
  bool Finish();
  void Reset();

  // Policy/limits surface, applied uniformly to whichever execution tier
  // this session runs (the product runner's scanner, or every lockstep
  // per-slot session). Limits must pass StreamLimits::Validate(); both
  // must be set before the first Feed of a document and survive Reset(),
  // so a pooled session keeps its serving configuration across documents.
  void set_limits(const StreamLimits& limits);
  void set_recovery_policy(RecoveryPolicy policy);

  // Streams every pre-selected node into `sink` as a MatchEvent whose
  // query_id is the submission-order query index, at its earliest certain
  // byte; duplicates of one query each get their own event, so a
  // CountingSink(num_queries()) reports exactly query_matches(). Product
  // tiers interleave all queries' events in document order; the
  // independent tier delivers each slot's events in document order but
  // interleaves slots per fed chunk. Survives Reset() like limits.
  void set_match_sink(MatchSink* sink);

  // Selection counts per submitted query, in submission order.
  std::vector<int64_t> query_matches() const;

  bool failed() const;
  const StreamError& stream_error() const;
  StreamStats stats() const;

  // The rung actually executing for THIS stream (a lazy-product session
  // demotes to kIndependent when materialization hits the state cap).
  MultiTier active_tier() const;

  // One-scan whole-document counting (compact markup, single-letter
  // labels): per-query counts via the fused product byte table / lazy
  // product / per-slot fused tables, without touching this session's
  // streaming state.
  bool one_scan_eligible() const;
  std::vector<int64_t> CountSelections(std::string_view bytes) const;

  // Product-tier runner for direct access (benchmarks, validated runs);
  // null on the independent tier.
  MultiTagDfaRunner* runner() { return runner_ ? &*runner_ : nullptr; }
  const MultiTagDfaRunner* runner() const {
    return runner_ ? &*runner_ : nullptr;
  }

 private:
  std::shared_ptr<const MultiQueryPlan> plan_;
  std::optional<MultiTagDfaRunner> runner_;          // product tiers
  std::vector<std::unique_ptr<Session>> sessions_;   // independent tier
  // Member/slot -> query-id remapping in front of the user's sink:
  // fan_out_ serves the product runner; slot_sinks_ (one per lockstep
  // session) serve the independent tier. Stable addresses — the
  // selectors hold raw pointers into them.
  MatchFanOutSink fan_out_;
  std::vector<std::unique_ptr<MatchFanOutSink>> slot_sinks_;
};

// Bounded free-list of idle BatchSessions over one shared plan; the batch
// analogue of SessionPool (acquire = free-list pop + Reset).
class BatchSessionPool {
 public:
  explicit BatchSessionPool(std::shared_ptr<const MultiQueryPlan> plan,
                            size_t max_idle = 64);

  std::unique_ptr<BatchSession> Acquire();
  void Release(std::unique_ptr<BatchSession> session);

  const std::shared_ptr<const MultiQueryPlan>& plan() const { return plan_; }
  SessionPool::Stats stats() const;
  size_t idle() const;

 private:
  std::shared_ptr<const MultiQueryPlan> plan_;
  size_t max_idle_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<BatchSession>> idle_;
  SessionPool::Stats stats_;
};

}  // namespace sst

#endif  // SST_ENGINE_MULTI_QUERY_H_
