#include "engine/multi_query.h"

#include <unordered_map>
#include <utility>

#include "base/check.h"

namespace sst {

namespace {

// Same eligibility rule as QueryPlan's fused byte table: one lowercase
// letter per symbol.
bool MarkupEligible(const Alphabet& alphabet) {
  for (Symbol s = 0; s < alphabet.size(); ++s) {
    const std::string& label = alphabet.LabelOf(s);
    if (label.size() != 1 || label[0] < 'a' || label[0] > 'z') return false;
  }
  return true;
}

}  // namespace

std::shared_ptr<const MultiQueryPlan> MultiQueryPlan::Compile(
    const std::vector<BatchQuery>& queries, const Alphabet& alphabet,
    const MultiQueryOptions& options, PlanCache* cache) {
  SST_CHECK_MSG(!queries.empty(), "a batch needs at least one query");
  // The per-query plans come from the PlanCache (the caller's, so batch
  // compilation shares work with single-query serving; a private one
  // otherwise): dedup below reuses its canonical key, so the batch sees
  // through whitespace and textual variants.
  PlanCache local_cache;
  PlanCache& plans = cache != nullptr ? *cache : local_cache;

  auto plan = std::shared_ptr<MultiQueryPlan>(new MultiQueryPlan());
  plan->options_ = options;
  plan->alphabet_ = alphabet;
  plan->scanner_tables_ =
      ScannerTables::Build(options.plan.format, alphabet);

  std::unordered_map<std::string, int> slot_index;
  plan->slot_of_.reserve(queries.size());
  for (const BatchQuery& query : queries) {
    std::string key = PlanCache::CanonicalKey(query.syntax, query.text,
                                              alphabet, options.plan);
    auto [it, inserted] =
        slot_index.emplace(std::move(key), plan->num_slots());
    if (inserted) {
      plan->slot_plans_.push_back(plans.GetOrCompile(
          query.syntax, query.text, alphabet, options.plan));
    }
    plan->slot_of_.push_back(it->second);
  }

  bool all_registerless = true;
  bool mixed_ok = true;
  int stackless_members = 0;
  for (const auto& slot_plan : plan->slot_plans_) {
    if (!slot_plan->exact()) {
      all_registerless = false;
      mixed_ok = false;
      break;
    }
    if (slot_plan->tag_dfa() != nullptr) continue;
    all_registerless = false;
    if (slot_plan->fused_dra() != nullptr) {
      ++stackless_members;
    } else {
      // A stackless member without a fused DRA (term encoding, budget
      // blown, unfusable labels) — or a stack-baseline member — has no
      // one-scan form, so the whole batch steps independently.
      mixed_ok = false;
      break;
    }
  }
  if (!all_registerless) {
    if (mixed_ok && stackless_members > 0) {
      // Mixed tier: fuse the registerless members into an eager
      // sub-product (their mask bits lead the member order) and borrow
      // each stackless member's fused DRA from its slot plan.
      for (int slot = 0; slot < plan->num_slots(); ++slot) {
        if (plan->slot_plans_[static_cast<size_t>(slot)]->tag_dfa() !=
            nullptr) {
          plan->product_slot_.push_back(slot);
        } else {
          plan->dra_slot_.push_back(slot);
        }
      }
      bool product_ok = true;
      if (!plan->product_slot_.empty()) {
        plan->components_.reserve(plan->product_slot_.size());
        for (int slot : plan->product_slot_) {
          plan->components_.push_back(
              plan->slot_plans_[static_cast<size_t>(slot)]->tag_dfa());
        }
        plan->eager_ =
            BuildTagDfaProduct(plan->components_, options.eager_state_cap);
        product_ok = plan->eager_.has_value();
      }
      if (product_ok) {
        plan->mixed_dras_.reserve(plan->dra_slot_.size());
        for (int slot : plan->dra_slot_) {
          plan->mixed_dras_.push_back(
              plan->slot_plans_[static_cast<size_t>(slot)]->fused_dra());
        }
        plan->tier_ = MultiTier::kMixed;
        return plan;
      }
      // The registerless sub-product outgrew the eager cap; the mixed
      // tier has no lazy rung, so the batch steps independently.
      plan->components_.clear();
      plan->product_slot_.clear();
      plan->dra_slot_.clear();
    }
    plan->tier_ = MultiTier::kIndependent;
    return plan;
  }

  plan->components_.reserve(plan->slot_plans_.size());
  for (const auto& slot_plan : plan->slot_plans_) {
    plan->components_.push_back(slot_plan->tag_dfa());
  }

  plan->eager_ =
      BuildTagDfaProduct(plan->components_, options.eager_state_cap);
  if (plan->eager_.has_value()) {
    plan->tier_ = MultiTier::kFusedProduct;
    if (options.plan.format == StreamFormat::kCompactMarkup &&
        MarkupEligible(alphabet)) {
      plan->eager_fused_ =
          std::make_unique<ByteTagDfaRunner>(plan->eager_->dfa, alphabet);
    }
  } else {
    plan->tier_ = MultiTier::kLazyProduct;
    plan->lazy_ = std::make_unique<LazyTagDfaProduct>(
        plan->components_, options.lazy_state_cap);
  }
  return plan;
}

std::vector<int64_t> MultiQueryPlan::ExpandCounts(
    const std::vector<int64_t>& slot_counts) const {
  SST_CHECK(static_cast<int>(slot_counts.size()) == num_slots());
  std::vector<int64_t> counts(slot_of_.size());
  for (size_t i = 0; i < slot_of_.size(); ++i) {
    counts[i] = slot_counts[static_cast<size_t>(slot_of_[i])];
  }
  return counts;
}

std::vector<int64_t> MultiQueryPlan::MemberCountsToSlots(
    const std::vector<int64_t>& member_counts) const {
  if (tier_ != MultiTier::kMixed) return member_counts;
  SST_CHECK(member_counts.size() ==
            product_slot_.size() + dra_slot_.size());
  std::vector<int64_t> slot_counts(static_cast<size_t>(num_slots()), 0);
  for (size_t i = 0; i < product_slot_.size(); ++i) {
    slot_counts[static_cast<size_t>(product_slot_[i])] = member_counts[i];
  }
  for (size_t j = 0; j < dra_slot_.size(); ++j) {
    slot_counts[static_cast<size_t>(dra_slot_[j])] =
        member_counts[product_slot_.size() + j];
  }
  return slot_counts;
}

std::vector<std::vector<int32_t>> MultiQueryPlan::MemberQueryIds() const {
  // Slot -> submitted query indices first; member order is slot order on
  // every tier except kMixed, where product mask bits lead.
  std::vector<std::vector<int32_t>> by_slot(
      static_cast<size_t>(num_slots()));
  for (size_t i = 0; i < slot_of_.size(); ++i) {
    by_slot[static_cast<size_t>(slot_of_[i])].push_back(
        static_cast<int32_t>(i));
  }
  if (tier_ != MultiTier::kMixed) return by_slot;
  std::vector<std::vector<int32_t>> by_member;
  by_member.reserve(by_slot.size());
  for (int slot : product_slot_) {
    by_member.push_back(by_slot[static_cast<size_t>(slot)]);
  }
  for (int slot : dra_slot_) {
    by_member.push_back(by_slot[static_cast<size_t>(slot)]);
  }
  return by_member;
}

MultiQueryPlan::Stats MultiQueryPlan::stats() const {
  Stats stats;
  stats.num_queries = num_queries();
  stats.num_slots = num_slots();
  stats.tier = tier_;
  stats.fused_byte_table = eager_fused_ != nullptr;
  stats.eager_states = eager_ ? eager_->dfa.num_states : 0;
  stats.lazy_states = lazy_ ? lazy_->num_states() : 0;
  stats.lazy_overflowed = lazy_ ? lazy_->overflowed() : false;
  stats.stackless_members = static_cast<int>(dra_slot_.size());
  return stats;
}

// --- BatchSession --------------------------------------------------------

BatchSession::BatchSession(std::shared_ptr<const MultiQueryPlan> plan)
    : plan_(std::move(plan)) {
  if (plan_->tier() == MultiTier::kIndependent) {
    sessions_.reserve(static_cast<size_t>(plan_->num_slots()));
    for (const auto& slot_plan : plan_->slot_plans()) {
      sessions_.push_back(std::make_unique<Session>(slot_plan));
    }
    return;
  }
  runner_.emplace(plan_->options().plan.format, &plan_->alphabet(),
                  &plan_->scanner_tables(), plan_->eager(),
                  plan_->eager_fused(), plan_->lazy(), plan_->mixed_dras());
}

bool BatchSession::Feed(std::string_view chunk) {
  if (runner_) return runner_->Feed(chunk);
  // Lockstep: the scanners are identical, so every session sees the same
  // events and fails at the same byte; the conjunction is just defensive.
  bool ok = true;
  for (auto& session : sessions_) ok = session->Feed(chunk) && ok;
  return ok;
}

bool BatchSession::Finish() {
  if (runner_) return runner_->Finish();
  bool ok = true;
  for (auto& session : sessions_) ok = session->Finish() && ok;
  return ok;
}

void BatchSession::Reset() {
  if (runner_) {
    runner_->Reset();
    return;
  }
  for (auto& session : sessions_) session->Reset();
}

void BatchSession::set_limits(const StreamLimits& limits) {
  if (runner_) {
    runner_->selector().set_limits(limits);
    return;
  }
  for (auto& session : sessions_) session->selector().set_limits(limits);
}

void BatchSession::set_recovery_policy(RecoveryPolicy policy) {
  if (runner_) {
    runner_->selector().set_recovery_policy(policy);
    return;
  }
  for (auto& session : sessions_) {
    session->selector().set_recovery_policy(policy);
  }
}

void BatchSession::set_match_sink(MatchSink* sink) {
  if (runner_) {
    if (sink == nullptr) {
      runner_->selector().set_match_sink(nullptr);
      return;
    }
    fan_out_ = MatchFanOutSink(sink, plan_->MemberQueryIds());
    runner_->selector().set_match_sink(&fan_out_);
    return;
  }
  slot_sinks_.clear();
  if (sink == nullptr) {
    for (auto& session : sessions_) session->set_match_sink(nullptr);
    return;
  }
  // One adapter per lockstep slot session: each session emits query_id 0,
  // remapped here to the slot's submitted query indices.
  std::vector<std::vector<int32_t>> by_slot = plan_->MemberQueryIds();
  slot_sinks_.reserve(sessions_.size());
  for (size_t i = 0; i < sessions_.size(); ++i) {
    slot_sinks_.push_back(std::make_unique<MatchFanOutSink>(
        sink,
        std::vector<std::vector<int32_t>>{std::move(by_slot[i])}));
    sessions_[i]->set_match_sink(slot_sinks_.back().get());
  }
}

std::vector<int64_t> BatchSession::query_matches() const {
  if (runner_) {
    return plan_->ExpandCounts(
        plan_->MemberCountsToSlots(runner_->query_matches()));
  }
  std::vector<int64_t> slot_counts(sessions_.size());
  for (size_t i = 0; i < sessions_.size(); ++i) {
    slot_counts[i] = sessions_[i]->matches();
  }
  return plan_->ExpandCounts(slot_counts);
}

bool BatchSession::failed() const {
  if (runner_) return runner_->failed();
  return sessions_.front()->failed();
}

const StreamError& BatchSession::stream_error() const {
  if (runner_) return runner_->stream_error();
  return sessions_.front()->stream_error();
}

StreamStats BatchSession::stats() const {
  if (runner_) return runner_->stats();
  // Lockstep slots see the same framing, so the scanner-side counters are
  // identical across sessions; only the recorder counters differ per slot
  // (each slot has its own pending buffer) and the machine-side stack
  // diagnostics (slots may run different tiers — a stack-baseline slot
  // reports a peak while its stackless neighbors report 0). Sum the
  // monotone counters, max the peaks.
  StreamStats stats = sessions_.front()->stats();
  stats.matches_emitted = 0;
  stats.pending_matches_peak = 0;
  stats.max_stack_depth = 0;
  stats.underflow_closes = 0;
  for (const auto& session : sessions_) {
    StreamStats s = session->stats();
    stats.matches_emitted += s.matches_emitted;
    if (s.pending_matches_peak > stats.pending_matches_peak) {
      stats.pending_matches_peak = s.pending_matches_peak;
    }
    if (s.max_stack_depth > stats.max_stack_depth) {
      stats.max_stack_depth = s.max_stack_depth;
    }
    stats.underflow_closes += s.underflow_closes;
  }
  return stats;
}

MultiTier BatchSession::active_tier() const {
  if (runner_) return runner_->active_tier();
  return MultiTier::kIndependent;
}

bool BatchSession::one_scan_eligible() const {
  if (runner_) return runner_->one_scan_eligible();
  for (const auto& slot_plan : plan_->slot_plans()) {
    if (slot_plan->fused() == nullptr) return false;
  }
  return true;
}

std::vector<int64_t> BatchSession::CountSelections(
    std::string_view bytes) const {
  if (runner_) {
    return plan_->ExpandCounts(
        plan_->MemberCountsToSlots(runner_->CountSelections(bytes)));
  }
  SST_CHECK_MSG(one_scan_eligible(),
                "one-scan counting needs per-slot fused byte tables");
  std::vector<int64_t> slot_counts(sessions_.size());
  for (size_t i = 0; i < sessions_.size(); ++i) {
    slot_counts[i] =
        plan_->slot_plans()[i]->fused()->CountSelections(bytes);
  }
  return plan_->ExpandCounts(slot_counts);
}

// --- BatchSessionPool ----------------------------------------------------

BatchSessionPool::BatchSessionPool(std::shared_ptr<const MultiQueryPlan> plan,
                                   size_t max_idle)
    : plan_(std::move(plan)), max_idle_(max_idle) {}

std::unique_ptr<BatchSession> BatchSessionPool::Acquire() {
  std::unique_ptr<BatchSession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      session = std::move(idle_.back());
      idle_.pop_back();
      ++stats_.reused;
    } else {
      ++stats_.created;
    }
    ++stats_.outstanding;
    if (stats_.outstanding > stats_.peak_outstanding) {
      stats_.peak_outstanding = stats_.outstanding;
    }
  }
  if (session == nullptr) return std::make_unique<BatchSession>(plan_);
  session->Reset();
  return session;
}

void BatchSessionPool::Release(std::unique_ptr<BatchSession> session) {
  if (session == nullptr) return;
  SST_CHECK(session->plan_ptr() == plan_);
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.outstanding;
  if (idle_.size() < max_idle_) {
    idle_.push_back(std::move(session));
  } else {
    ++stats_.destroyed;
  }
}

SessionPool::Stats BatchSessionPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionPool::Stats snapshot = stats_;
  snapshot.idle = static_cast<int64_t>(idle_.size());
  return snapshot;
}

size_t BatchSessionPool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

}  // namespace sst
