#include "engine/plan_cache.h"

#include <algorithm>

#include "base/check.h"

namespace sst {

namespace {

inline bool IsAsciiWs(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

Rpq ParseQuery(QuerySyntax syntax, const std::string& canonical_text,
               const Alphabet& alphabet) {
  switch (syntax) {
    case QuerySyntax::kRegex:
      return Rpq::FromRegex(canonical_text, alphabet);
    case QuerySyntax::kXPath:
      return Rpq::FromXPath(canonical_text, alphabet);
    case QuerySyntax::kJsonPath:
      return Rpq::FromJsonPath(canonical_text, alphabet);
  }
  SST_CHECK_MSG(false, "unknown query syntax");
  return Rpq{};
}

}  // namespace

const char* QuerySyntaxName(QuerySyntax syntax) {
  switch (syntax) {
    case QuerySyntax::kRegex:
      return "regex";
    case QuerySyntax::kXPath:
      return "xpath";
    case QuerySyntax::kJsonPath:
      return "jsonpath";
  }
  return "unknown";
}

PlanCache::PlanCache() : PlanCache(Options()) {}

PlanCache::PlanCache(const Options& options) {
  int num_shards = std::max(1, options.num_shards);
  per_shard_capacity_ =
      std::max<size_t>(1, (options.capacity + num_shards - 1) /
                              static_cast<size_t>(num_shards));
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string PlanCache::CanonicalizeQueryText(std::string_view query) {
  std::string canonical;
  canonical.reserve(query.size());
  for (char c : query) {
    if (!IsAsciiWs(c)) canonical.push_back(c);
  }
  return canonical;
}

std::string PlanCache::CanonicalKey(QuerySyntax syntax,
                                    std::string_view query,
                                    const Alphabet& alphabet,
                                    const PlanOptions& options) {
  // Field separator \x1f / label separator \x1e cannot occur in query text
  // or labels that the parsers accept, so the key is collision-free.
  std::string key = QuerySyntaxName(syntax);
  key.push_back('\x1f');
  key += CanonicalizeQueryText(query);
  key.push_back('\x1f');
  key.push_back(
      static_cast<char>('0' + static_cast<int>(options.encoding)));
  key.push_back(static_cast<char>('0' + static_cast<int>(options.format)));
  key.push_back(options.allow_stack_fallback ? '1' : '0');
  key.push_back('\x1f');
  for (Symbol s = 0; s < alphabet.size(); ++s) {
    key += alphabet.LabelOf(s);
    key.push_back('\x1e');
  }
  return key;
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  size_t hash = std::hash<std::string>{}(key);
  return *shards_[hash % shards_.size()];
}

std::shared_ptr<const QueryPlan> PlanCache::GetOrCompile(
    QuerySyntax syntax, std::string_view query, const Alphabet& alphabet,
    const PlanOptions& options) {
  const std::string key = CanonicalKey(syntax, query, alphabet, options);
  Shard& shard = ShardFor(key);

  std::promise<std::shared_ptr<const QueryPlan>> promise;
  PlanFuture future;
  bool this_thread_compiles = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      if (it->second.ready) {
        ++shard.stats.hits;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
        return it->second.future.get();
      }
      // Another thread is compiling this key right now: coalesce onto its
      // in-flight future (single-flight).
      ++shard.stats.coalesced_misses;
      future = it->second.future;
    } else {
      ++shard.stats.misses;
      this_thread_compiles = true;
      future = promise.get_future().share();
      Entry entry;
      entry.future = future;
      shard.entries.emplace(key, std::move(entry));
    }
  }
  if (!this_thread_compiles) return future.get();

  if (compile_hook_) compile_hook_();
  std::shared_ptr<const QueryPlan> plan =
      QueryPlan::Compile(ParseQuery(syntax, CanonicalizeQueryText(query),
                                    alphabet),
                         options);
  promise.set_value(plan);

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end() && !it->second.ready) {
      it->second.ready = true;
      shard.lru.push_front(key);
      it->second.lru_pos = shard.lru.begin();
      while (shard.lru.size() > per_shard_capacity_) {
        const std::string& victim = shard.lru.back();
        shard.entries.erase(victim);
        shard.lru.pop_back();
        ++shard.stats.evictions;
      }
    }
    // Entry missing (Clear() raced the compilation): nothing to publish;
    // the caller still gets its plan.
  }
  return plan;
}

PlanCache::Stats PlanCache::stats() const {
  Stats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.coalesced_misses += shard->stats.coalesced_misses;
    total.evictions += shard->stats.evictions;
    total.size += static_cast<int64_t>(shard->lru.size());
  }
  return total;
}

void PlanCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->lru.clear();
  }
}

}  // namespace sst
