#include "dtd/path_dtd.h"

#include <algorithm>
#include <utility>

#include "automata/determinize.h"
#include "automata/minimize.h"
#include "base/check.h"
#include "classes/syntactic_classes.h"
#include "dra/tag_dfa.h"
#include "eval/al_recognizer.h"

namespace sst {

bool PathDtd::IsValid() const {
  if (static_cast<int>(productions.size()) != num_symbols) return false;
  if (initial_symbol < 0 || initial_symbol >= num_symbols) return false;
  for (const PathProduction& production : productions) {
    for (Symbol b : production.allowed_children) {
      if (b < 0 || b >= num_symbols) return false;
    }
  }
  return true;
}

namespace {

std::vector<bool> AllowedSet(const PathProduction& production,
                             int num_symbols) {
  std::vector<bool> allowed(num_symbols, false);
  for (Symbol b : production.allowed_children) allowed[b] = true;
  return allowed;
}

}  // namespace

bool SatisfiesPathDtd(const PathDtd& dtd, const Tree& tree) {
  SST_CHECK(dtd.IsValid());
  if (tree.empty()) return false;
  if (tree.label(tree.root()) != dtd.initial_symbol) return false;
  std::vector<std::vector<bool>> allowed;
  allowed.reserve(dtd.num_symbols);
  for (const PathProduction& production : dtd.productions) {
    allowed.push_back(AllowedSet(production, dtd.num_symbols));
  }
  for (int v = 0; v < tree.size(); ++v) {
    Symbol a = tree.label(v);
    if (tree.IsLeaf(v)) {
      if (!dtd.productions[a].allows_leaf) return false;
      continue;
    }
    for (int c = tree.node(v).first_child; c >= 0;
         c = tree.node(c).next_sibling) {
      if (!allowed[a][tree.label(c)]) return false;
    }
  }
  return true;
}

bool SatisfiesSpecializedPathDtd(const SpecializedPathDtd& dtd,
                                 const Tree& tree) {
  SST_CHECK(dtd.dtd.IsValid());
  if (tree.empty()) return false;
  const int extended = dtd.dtd.num_symbols;
  std::vector<std::vector<bool>> allowed;
  allowed.reserve(extended);
  for (const PathProduction& production : dtd.dtd.productions) {
    allowed.push_back(AllowedSet(production, extended));
  }
  // feasible[v][a'] : the subtree at v admits a labelling with a' at v.
  std::vector<std::vector<bool>> feasible(tree.size(),
                                          std::vector<bool>(extended, false));
  for (int v = tree.size() - 1; v >= 0; --v) {
    for (Symbol ap = 0; ap < extended; ++ap) {
      if (dtd.projection[ap] != tree.label(v)) continue;
      bool ok = true;
      if (tree.IsLeaf(v)) {
        ok = dtd.dtd.productions[ap].allows_leaf;
      } else {
        for (int c = tree.node(v).first_child; ok && c >= 0;
             c = tree.node(c).next_sibling) {
          bool child_ok = false;
          for (Symbol bp = 0; bp < extended && !child_ok; ++bp) {
            child_ok = allowed[ap][bp] && feasible[c][bp];
          }
          ok = child_ok;
        }
      }
      feasible[v][ap] = ok;
    }
  }
  return feasible[tree.root()][dtd.dtd.initial_symbol];
}

Dfa PathDtdToDfa(const PathDtd& dtd) {
  SST_CHECK(dtd.IsValid());
  // States: one per symbol, plus an initial state and a rejecting sink.
  const int k = dtd.num_symbols;
  const int init = k;
  const int sink = k + 1;
  Dfa dfa = Dfa::Create(k + 2, k);
  dfa.initial = init;
  for (Symbol a = 0; a < k; ++a) {
    dfa.accepting[a] = dtd.productions[a].allows_leaf;
    std::vector<bool> allowed = AllowedSet(dtd.productions[a], k);
    for (Symbol b = 0; b < k; ++b) {
      dfa.SetNext(a, b, allowed[b] ? b : sink);
    }
  }
  for (Symbol b = 0; b < k; ++b) {
    dfa.SetNext(init, b, b == dtd.initial_symbol ? b : sink);
    dfa.SetNext(sink, b, sink);
  }
  return dfa;
}

Nfa SpecializedPathDtdToNfa(const SpecializedPathDtd& dtd) {
  SST_CHECK(dtd.dtd.IsValid());
  const int extended = dtd.dtd.num_symbols;
  Nfa nfa;
  nfa.num_symbols = dtd.num_projected_symbols;
  // One state per extended symbol plus an initial state.
  for (int i = 0; i < extended + 1; ++i) nfa.AddState();
  nfa.initial = extended;
  nfa.AddEdge(nfa.initial, dtd.projection[dtd.dtd.initial_symbol],
              dtd.dtd.initial_symbol);
  for (Symbol ap = 0; ap < extended; ++ap) {
    nfa.accepting[ap] = dtd.dtd.productions[ap].allows_leaf;
    for (Symbol bp : dtd.dtd.productions[ap].allowed_children) {
      nfa.AddEdge(ap, dtd.projection[bp], bp);
    }
  }
  return nfa;
}

Dfa PathLanguageMinimalDfa(const PathDtd& dtd) {
  return Minimize(PathDtdToDfa(dtd));
}

Dfa PathLanguageMinimalDfa(const SpecializedPathDtd& dtd) {
  return Minimize(Determinize(SpecializedPathDtdToNfa(dtd)));
}

bool IsRegisterlessWeaklyValidatable(const PathDtd& dtd) {
  return IsAFlat(PathLanguageMinimalDfa(dtd));
}

namespace {

// Owning wrapper so the validator can run a materialized table automaton.
class OwningTagDfaValidator final : public StreamMachine {
 public:
  explicit OwningTagDfaValidator(TagDfa dfa)
      : dfa_(std::move(dfa)), inner_(&dfa_) {}

  void Reset() override { inner_.Reset(); }
  void OnOpen(Symbol symbol) override { inner_.OnOpen(symbol); }
  void OnClose(Symbol symbol) override { inner_.OnClose(symbol); }
  bool InAcceptingState() const override { return inner_.InAcceptingState(); }

 private:
  TagDfa dfa_;
  TagDfaMachine inner_;
};

}  // namespace

std::unique_ptr<StreamMachine> BuildRegisterlessDtdValidator(
    const PathDtd& dtd) {
  Dfa minimal = PathLanguageMinimalDfa(dtd);
  std::optional<TagDfa> materialized =
      MaterializeForallRecognizer(minimal, /*blind=*/false, 1 << 16);
  if (materialized.has_value()) {
    return std::make_unique<OwningTagDfaValidator>(std::move(*materialized));
  }
  return BuildForallRecognizer(minimal, /*blind=*/false);
}

void StackDtdValidator::Reset() {
  stack_.clear();
  valid_ = true;
  depth_zero_ = false;
  seen_root_ = false;
  max_stack_depth_ = 0;
}

void StackDtdValidator::OnOpen(Symbol symbol) {
  depth_zero_ = false;
  if (!valid_) return;
  if (stack_.empty()) {
    if (seen_root_ || symbol != dtd_->initial_symbol) {
      valid_ = false;
      return;
    }
    seen_root_ = true;
  } else {
    const PathProduction& production = dtd_->productions[stack_.back().first];
    if (std::find(production.allowed_children.begin(),
                  production.allowed_children.end(),
                  symbol) == production.allowed_children.end()) {
      valid_ = false;
      return;
    }
    stack_.back().second = true;  // parent has a child
  }
  stack_.emplace_back(symbol, false);
  max_stack_depth_ = std::max(max_stack_depth_, stack_.size());
}

void StackDtdValidator::OnClose(Symbol /*symbol*/) {
  if (!valid_) return;
  if (stack_.empty()) {
    valid_ = false;
    return;
  }
  auto [label, has_children] = stack_.back();
  stack_.pop_back();
  if (!has_children && !dtd_->productions[label].allows_leaf) {
    valid_ = false;
    return;
  }
  depth_zero_ = stack_.empty();
}

}  // namespace sst
