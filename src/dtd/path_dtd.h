#ifndef SST_DTD_PATH_DTD_H_
#define SST_DTD_PATH_DTD_H_

#include <memory>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "dra/machine.h"
#include "trees/tree.h"

namespace sst {

// Section 4.1: path DTDs. A path DTD restricts every production to the
// forms a -> (b1 + ... + bn)^* or a -> (b1 + ... + bn)^+ : the set of
// allowed child labels depends only on the parent label, plus a "may be a
// leaf" bit (the ^* form). The tree language of a path DTD is exactly AL
// for the regular language L of allowed root-to-leaf label paths, which
// connects weak validation against such DTDs to Theorem 3.2(2).
struct PathProduction {
  std::vector<Symbol> allowed_children;
  bool allows_leaf = true;  // true = ^* production, false = ^+
};

struct PathDtd {
  int num_symbols = 0;        // |Γ|
  Symbol initial_symbol = 0;  // required root label
  std::vector<PathProduction> productions;  // one per symbol

  bool IsValid() const;
};

// A specialized path DTD (Section 4.1 / Fig 6): a path DTD over an extended
// alphabet Γ' plus a projection Γ' -> Γ; the defined tree language is the
// projection of the DTD's language.
struct SpecializedPathDtd {
  PathDtd dtd;                     // over Γ'
  std::vector<Symbol> projection;  // Γ' -> Γ
  int num_projected_symbols = 0;   // |Γ|
};

// Direct (non-streaming) validation ground truths.
bool SatisfiesPathDtd(const PathDtd& dtd, const Tree& tree);
// Existential relabelling semantics, by bottom-up feasible-set DP.
bool SatisfiesSpecializedPathDtd(const SpecializedPathDtd& dtd,
                                 const Tree& tree);

// The path automaton: a complete DFA over Γ recognizing the language L of
// allowed root-to-leaf paths, so that the DTD's tree language is AL.
Dfa PathDtdToDfa(const PathDtd& dtd);

// For specialized DTDs the path automaton is naturally nondeterministic
// (distinct Γ'-symbols may share a projection). Callers should determinize
// and minimize before applying any syntactic-class test — Fig 6 shows that
// testing the raw NFA is unsound.
Nfa SpecializedPathDtdToNfa(const SpecializedPathDtd& dtd);

// Minimal DFA of the (projected) path language.
Dfa PathLanguageMinimalDfa(const PathDtd& dtd);
Dfa PathLanguageMinimalDfa(const SpecializedPathDtd& dtd);

// Theorem 3.2(2) applied to weak validation (Section 4.1): a streamed tree
// can be weakly validated against the path DTD by a finite automaton iff
// the minimal DFA of its path language is A-flat.
bool IsRegisterlessWeaklyValidatable(const PathDtd& dtd);

// Streaming validators.
//
// Registerless weak validator (valid only under the A-flatness condition):
// the AL recognizer of Theorem 3.2(2). Accepts a tree iff all branches are
// allowed — on well-formed input this is exactly DTD conformance.
std::unique_ptr<StreamMachine> BuildRegisterlessDtdValidator(
    const PathDtd& dtd);

// The classical baseline: full validation with an explicit stack (also
// detects malformed streams). Used as oracle and benchmark baseline.
class StackDtdValidator final : public StreamMachine {
 public:
  explicit StackDtdValidator(const PathDtd* dtd) : dtd_(dtd) { Reset(); }

  void Reset() override;
  void OnOpen(Symbol symbol) override;
  void OnClose(Symbol symbol) override;
  bool InAcceptingState() const override { return valid_ && depth_zero_; }

  size_t max_stack_depth() const { return max_stack_depth_; }

 private:
  const PathDtd* dtd_;
  std::vector<std::pair<Symbol, bool>> stack_;  // (label, has_children)
  bool valid_ = true;
  bool depth_zero_ = false;
  bool seen_root_ = false;
  size_t max_stack_depth_ = 0;
};

}  // namespace sst

#endif  // SST_DTD_PATH_DTD_H_
