#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/ground_truth.h"
#include "trees/tree.h"

namespace sst {
namespace {

TEST(Tree, BuildAndNavigate) {
  // The paper's first example: aaācc̄ā encodes a root a with children a, c.
  Tree tree;
  int root = tree.AddRoot(0);
  int child_a = tree.AddChild(root, 0);
  int child_c = tree.AddChild(root, 2);
  EXPECT_EQ(tree.size(), 3);
  EXPECT_EQ(tree.node(root).first_child, child_a);
  EXPECT_EQ(tree.node(child_a).next_sibling, child_c);
  EXPECT_TRUE(tree.IsLeaf(child_a));
  EXPECT_FALSE(tree.IsLeaf(root));
  EXPECT_EQ(tree.Depth(child_c), 2);
  EXPECT_EQ(tree.Height(), 2);
  EXPECT_EQ(tree.Leaves(), (std::vector<int>{child_a, child_c}));
  EXPECT_EQ(tree.PathWord(child_c), (Word{0, 2}));
}

TEST(Encoding, MatchesPaperExample) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Tree tree;
  int root = tree.AddRoot(0);
  tree.AddChild(root, 0);
  tree.AddChild(root, 2);
  EventStream events = Encode(tree);
  // Paper Section 2: aaācc̄ā, i.e. "aaAcCA" in compact form.
  EXPECT_EQ(ToCompactMarkup(alphabet, events), "aaAcCA");
}

TEST(Encoding, RoundTripThroughDecode) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Tree tree = RandomTree(1 + static_cast<int>(rng.NextBelow(60)), 3,
                           rng.NextDouble(), &rng);
    EventStream events = Encode(tree);
    EXPECT_EQ(events.size(), 2 * static_cast<size_t>(tree.size()));
    std::optional<Tree> decoded = Decode(events);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(Encode(*decoded), events);
  }
}

TEST(Encoding, InvalidStreamsRejected) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  auto parse = [&](const char* text) {
    std::optional<EventStream> events = ParseCompactMarkup(alphabet, text);
    return events.has_value() && IsValidEncoding(*events);
  };
  EXPECT_TRUE(parse("aA"));
  EXPECT_TRUE(parse("abBA"));
  EXPECT_FALSE(parse(""));        // empty
  EXPECT_FALSE(parse("a"));       // dangling open
  EXPECT_FALSE(parse("A"));       // dangling close
  EXPECT_FALSE(parse("aB"));      // mismatched label
  EXPECT_FALSE(parse("aAbB"));    // two roots
  EXPECT_FALSE(parse("abAB"));    // improper nesting
}

TEST(Encoding, CompactMarkupRoundTrip) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::optional<EventStream> events =
      ParseCompactMarkup(alphabet, "abaAaABcCA");
  ASSERT_TRUE(events.has_value());
  EXPECT_EQ(ToCompactMarkup(alphabet, *events), "abaAaABcCA");
  std::optional<Tree> tree = Decode(*events);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->size(), 5);
}

TEST(Encoding, TermEncodingMatchesSection42Example) {
  // Section 4.2: instead of abaāaāb̄cc̄ā we write a{b{a{}a{}}c{}}.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::optional<EventStream> markup =
      ParseCompactMarkup(alphabet, "abaAaABcCA");
  ASSERT_TRUE(markup.has_value());
  EXPECT_EQ(ToCompactTerm(alphabet, *markup), "a{b{a{}a{}}c{}}");
  std::optional<EventStream> term =
      ParseCompactTerm(alphabet, "a{b{a{}a{}}c{}}");
  ASSERT_TRUE(term.has_value());
  std::optional<Tree> t1 = Decode(*markup);
  std::optional<Tree> t2 = Decode(*term);
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(Encode(*t1), Encode(*t2));
}

TEST(Encoding, XmlLiteRoundTrip) {
  Alphabet alphabet;
  std::optional<EventStream> events =
      ParseXmlLite(&alphabet, "<doc><item></item><item></item></doc>");
  ASSERT_TRUE(events.has_value());
  EXPECT_EQ(events->size(), 6u);
  EXPECT_TRUE(IsValidEncoding(*events));
  EXPECT_EQ(ToXmlLite(alphabet, *events),
            "<doc><item></item><item></item></doc>");
}

TEST(Generators, ChainTreeIsASingleBranch) {
  Word word = {0, 1, 2, 1};
  Tree tree = ChainTree(word);
  EXPECT_EQ(tree.size(), 4);
  EXPECT_EQ(tree.Height(), 4);
  EXPECT_EQ(tree.Leaves().size(), 1u);
  EXPECT_EQ(tree.PathWord(tree.Leaves()[0]), word);
}

TEST(Generators, RandomTreeRespectsSizeAndHeight) {
  Rng rng(7);
  Tree deep = RandomTree(100, 3, 1.0, &rng);
  EXPECT_EQ(deep.size(), 100);
  EXPECT_EQ(deep.Height(), 100);  // bias 1.0 gives a chain
  Tree bounded = RandomTreeWithHeight(200, 10, 3, &rng);
  EXPECT_EQ(bounded.size(), 200);
  EXPECT_EQ(bounded.Height(), 10);
}

TEST(Generators, KnSchemaShape) {
  // n = 4, a-children at position 2 only, c-children at 1 and 4.
  int n = 4;
  std::vector<bool> a_child(n, false), c_child(n, false);
  a_child[1] = true;  // 1-based position 2
  c_child[0] = true;  // position 1
  c_child[3] = true;  // position 4
  Tree tree = KnSchemaTree(n, a_child, c_child, 0, 1, 2);
  // Main branch: 4 b's; plus one a and two c's.
  int count_a = 0, count_b = 0, count_c = 0;
  for (int id = 0; id < tree.size(); ++id) {
    if (tree.label(id) == 0) ++count_a;
    if (tree.label(id) == 1) ++count_b;
    if (tree.label(id) == 2) ++count_c;
  }
  EXPECT_EQ(count_a, 1);
  EXPECT_EQ(count_b, n);
  EXPECT_EQ(count_c, 2);
  EXPECT_EQ(tree.Height(), n + 1);  // deepest b has a c-child? position 4 yes
  EXPECT_EQ(AllKnAChoices(n).size(), 4u);  // 2^(n-2)
}

TEST(GroundTruth, SelectExistsForallConsistent) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    Tree tree = RandomTree(30, 3, 0.5, &rng);
    std::vector<bool> selected = SelectNodes(dfa, tree);
    bool some_leaf = false, all_leaves = true;
    for (int leaf : tree.Leaves()) {
      some_leaf = some_leaf || selected[leaf];
      all_leaves = all_leaves && selected[leaf];
    }
    EXPECT_EQ(TreeInExists(dfa, tree), some_leaf);
    EXPECT_EQ(TreeInForall(dfa, tree), all_leaves);
    // Selection agrees with direct path-word evaluation.
    for (int id = 0; id < tree.size(); ++id) {
      EXPECT_EQ(selected[id], dfa.Accepts(tree.PathWord(id)));
    }
  }
}

TEST(GroundTruth, ForallDualToExistsOfComplement) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a(a|b)*", alphabet);
  Dfa comp = Complement(dfa);
  Rng rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    Tree tree = RandomTree(20, 2, 0.4, &rng);
    EXPECT_EQ(TreeInForall(dfa, tree), !TreeInExists(comp, tree));
  }
}

}  // namespace
}  // namespace sst
