#include "base/byte_scan.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "base/rng.h"

namespace sst {
namespace {

// All ClassifyBlock kernels available on this machine, by name.
std::vector<std::pair<const char*, uint64_t (*)(const char*, size_t)>>
AvailableKernels() {
  std::vector<std::pair<const char*, uint64_t (*)(const char*, size_t)>>
      kernels = {{"swar", &ClassifyBlockSwar},
                 {"dispatched", &ClassifyBlock}};
#if defined(__x86_64__) || defined(__i386__)
  if (CpuHasSse2()) kernels.emplace_back("sse2", &ClassifyBlockSse2);
  if (CpuHasAvx2()) kernels.emplace_back("avx2", &ClassifyBlockAvx2);
#endif
  return kernels;
}

// Fills `out` with a mix heavy in whitespace and boundary bytes (0x08,
// 0x0E, 0x1F, 0x21, 0x7F, 0x80, 0xFF straddle the classifier's ranges).
void FillAdversarial(Rng* rng, char* out, size_t len) {
  static constexpr unsigned char kPool[] = {
      ' ',  '\t', '\n', '\v', '\f', '\r', 0x08, 0x0E, 0x1F, 0x21,
      '<',  '>',  '{',  '}',  'a',  'Z',  0x00, 0x7F, 0x80, 0xFF};
  for (size_t i = 0; i < len; ++i) {
    if (rng->NextBool(0.5)) {
      out[i] = static_cast<char>(kPool[rng->NextBelow(sizeof(kPool))]);
    } else {
      out[i] = static_cast<char>(rng->NextBelow(256));
    }
  }
}

TEST(ByteScan, ScalarReferenceSanity) {
  EXPECT_EQ(ClassifyBlockScalar("a b", 3), 0b101u);
  EXPECT_EQ(ClassifyBlockScalar(" \t\n\v\f\r", 6), 0u);
  EXPECT_EQ(ClassifyBlockScalar("", 0), 0u);
  // NUL and other control bytes are structural (only the six ASCII
  // whitespace bytes are skippable).
  const char nul[2] = {'\0', 0x08};
  EXPECT_EQ(ClassifyBlockScalar(nul, 2), 0b11u);
}

// Fuzz: every kernel agrees with the scalar classifier on random buffers
// at every alignment offset 0..31 and every length 0..80 (crosses the 8-,
// 16-, 32- and 64-byte block boundaries of all implementations).
TEST(ByteScan, ClassifyBlockMatchesScalarAtEveryAlignment) {
  Rng rng(2026);
  auto kernels = AvailableKernels();
  alignas(64) char buffer[32 + 128];
  for (int round = 0; round < 200; ++round) {
    FillAdversarial(&rng, buffer, sizeof(buffer));
    for (size_t offset = 0; offset < 32; ++offset) {
      const char* data = buffer + offset;
      for (size_t len : {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64,
                         65, 80}) {
        uint64_t expected = ClassifyBlockScalar(data, len);
        for (const auto& [name, kernel] : kernels) {
          EXPECT_EQ(kernel(data, len), expected)
              << name << " kernel, round " << round << ", offset " << offset
              << ", len " << len;
        }
      }
    }
  }
}

TEST(ByteScan, FindStructuralMatchesScalarScan) {
  Rng rng(7);
  for (int round = 0; round < 500; ++round) {
    size_t len = rng.NextBelow(300);
    std::string s(len, ' ');
    // Bias towards long whitespace runs with occasional structural bytes.
    for (size_t i = 0; i < len; ++i) {
      if (rng.NextBool(0.1)) s[i] = static_cast<char>(rng.NextBelow(256));
    }
    size_t expected = len;
    for (size_t i = 0; i < len; ++i) {
      if (!ByteIsAsciiWs(static_cast<unsigned char>(s[i]))) {
        expected = i;
        break;
      }
    }
    EXPECT_EQ(FindStructural(s.data(), len), expected) << "round " << round;
  }
}

TEST(ByteScan, FindStructuralEdgeCases) {
  EXPECT_EQ(FindStructural(nullptr, 0), 0u);
  std::string all_ws(1000, '\n');
  EXPECT_EQ(FindStructural(all_ws.data(), all_ws.size()), all_ws.size());
  all_ws += '<';
  EXPECT_EQ(FindStructural(all_ws.data(), all_ws.size()),
            all_ws.size() - 1);
  EXPECT_EQ(FindStructural("x", 1), 0u);
}

TEST(ByteScan, KernelNameIsKnown) {
  std::string name = ByteScanKernelName();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "swar") << name;
}

}  // namespace
}  // namespace sst
