#include "base/byte_scan.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "base/rng.h"

namespace sst {
namespace {

// All ClassifyBlock kernels available on this machine, by name.
std::vector<std::pair<const char*, uint64_t (*)(const char*, size_t)>>
AvailableKernels() {
  std::vector<std::pair<const char*, uint64_t (*)(const char*, size_t)>>
      kernels = {{"swar", &ClassifyBlockSwar},
                 {"dispatched", &ClassifyBlock}};
#if defined(__x86_64__) || defined(__i386__)
  if (CpuHasSse2()) kernels.emplace_back("sse2", &ClassifyBlockSse2);
  if (CpuHasAvx2()) kernels.emplace_back("avx2", &ClassifyBlockAvx2);
#endif
  return kernels;
}

// Fills `out` with a mix heavy in whitespace and boundary bytes (0x08,
// 0x0E, 0x1F, 0x21, 0x7F, 0x80, 0xFF straddle the classifier's ranges).
void FillAdversarial(Rng* rng, char* out, size_t len) {
  static constexpr unsigned char kPool[] = {
      ' ',  '\t', '\n', '\v', '\f', '\r', 0x08, 0x0E, 0x1F, 0x21,
      '<',  '>',  '{',  '}',  'a',  'Z',  0x00, 0x7F, 0x80, 0xFF};
  for (size_t i = 0; i < len; ++i) {
    if (rng->NextBool(0.5)) {
      out[i] = static_cast<char>(kPool[rng->NextBelow(sizeof(kPool))]);
    } else {
      out[i] = static_cast<char>(rng->NextBelow(256));
    }
  }
}

TEST(ByteScan, ScalarReferenceSanity) {
  EXPECT_EQ(ClassifyBlockScalar("a b", 3), 0b101u);
  EXPECT_EQ(ClassifyBlockScalar(" \t\n\v\f\r", 6), 0u);
  EXPECT_EQ(ClassifyBlockScalar("", 0), 0u);
  // NUL and other control bytes are structural (only the six ASCII
  // whitespace bytes are skippable).
  const char nul[2] = {'\0', 0x08};
  EXPECT_EQ(ClassifyBlockScalar(nul, 2), 0b11u);
}

// Fuzz: every kernel agrees with the scalar classifier on random buffers
// at every alignment offset 0..31 and EVERY length 0..130 — exhaustively
// covering the tail-handling paths: every non-block-multiple remainder of
// the 8- (SWAR), 16- (SSE2) and 32-byte (AVX2) inner blocks, the 64-byte
// clamp boundary, and over-long inputs past the clamp. (The tail audit
// found no defect — each kernel zero-pads the remainder and masks with
// (1 << rem) - 1, where rem is strictly below the shift width — and this
// sweep keeps it that way.)
TEST(ByteScan, ClassifyBlockMatchesScalarAtEveryAlignment) {
  Rng rng(2026);
  auto kernels = AvailableKernels();
  alignas(64) char buffer[32 + 160];
  for (int round = 0; round < 50; ++round) {
    FillAdversarial(&rng, buffer, sizeof(buffer));
    for (size_t offset = 0; offset < 32; ++offset) {
      const char* data = buffer + offset;
      for (size_t len = 0; len <= 130; ++len) {
        uint64_t expected = ClassifyBlockScalar(data, len);
        for (const auto& [name, kernel] : kernels) {
          EXPECT_EQ(kernel(data, len), expected)
              << name << " kernel, round " << round << ", offset " << offset
              << ", len " << len;
        }
      }
    }
  }
}

TEST(ByteScan, FindStructuralMatchesScalarScan) {
  Rng rng(7);
  for (int round = 0; round < 500; ++round) {
    size_t len = rng.NextBelow(300);
    std::string s(len, ' ');
    // Bias towards long whitespace runs with occasional structural bytes.
    for (size_t i = 0; i < len; ++i) {
      if (rng.NextBool(0.1)) s[i] = static_cast<char>(rng.NextBelow(256));
    }
    size_t expected = len;
    for (size_t i = 0; i < len; ++i) {
      if (!ByteIsAsciiWs(static_cast<unsigned char>(s[i]))) {
        expected = i;
        break;
      }
    }
    EXPECT_EQ(FindStructural(s.data(), len), expected) << "round " << round;
  }
}

TEST(ByteScan, FindStructuralEdgeCases) {
  EXPECT_EQ(FindStructural(nullptr, 0), 0u);
  std::string all_ws(1000, '\n');
  EXPECT_EQ(FindStructural(all_ws.data(), all_ws.size()), all_ws.size());
  all_ws += '<';
  EXPECT_EQ(FindStructural(all_ws.data(), all_ws.size()),
            all_ws.size() - 1);
  EXPECT_EQ(FindStructural("x", 1), 0u);
}

// Scalar reference for all three structural-consumption primitives: the
// ascending list of non-whitespace byte offsets.
std::vector<uint32_t> ScalarStructuralPositions(const std::string& s) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (!ByteIsAsciiWs(static_cast<unsigned char>(s[i]))) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

// Random buffer biased to exercise the interesting regimes: long
// whitespace runs (sparse masks), dense all-structural 64-byte blocks
// (the ForEachStructural fast path), and everything in between.
std::string RandomMixedBuffer(Rng* rng, size_t len) {
  std::string s;
  s.reserve(len);
  while (s.size() < len) {
    size_t run = 1 + rng->NextBelow(96);
    if (run > len - s.size()) run = len - s.size();
    if (rng->NextBool(0.4)) {
      static constexpr char kWs[] = {' ', '\t', '\n', '\v', '\f', '\r'};
      s.append(run, kWs[rng->NextBelow(6)]);
    } else {
      for (size_t i = 0; i < run; ++i) {
        s.push_back(static_cast<char>('a' + rng->NextBelow(26)));
      }
    }
  }
  return s;
}

TEST(ByteScan, ExtractStructuralMatchesScalarScan) {
  Rng rng(404);
  for (int round = 0; round < 300; ++round) {
    size_t len = rng.NextBelow(500);
    std::string s = RandomMixedBuffer(&rng, len);
    std::vector<uint32_t> expected = ScalarStructuralPositions(s);
    std::vector<uint32_t> got(len + 1, 0xDEADBEEFu);
    size_t n = ExtractStructural(s.data(), len, got.data());
    ASSERT_EQ(n, expected.size()) << "round " << round << ", len " << len;
    got.resize(n);
    EXPECT_EQ(got, expected) << "round " << round;
  }
}

TEST(ByteScan, ExtractStructuralEdgeCases) {
  uint32_t out[8];
  EXPECT_EQ(ExtractStructural(nullptr, 0, out), 0u);
  std::string ws(257, ' ');
  EXPECT_EQ(ExtractStructural(ws.data(), ws.size(), out), 0u);
  std::string one = ws + "x";
  ASSERT_EQ(ExtractStructural(one.data(), one.size(), out), 1u);
  EXPECT_EQ(out[0], 257u);
}

TEST(ByteScan, StructuralIteratorMatchesScalarScan) {
  Rng rng(405);
  for (int round = 0; round < 300; ++round) {
    size_t len = rng.NextBelow(500);
    std::string s = RandomMixedBuffer(&rng, len);
    std::vector<uint32_t> expected = ScalarStructuralPositions(s);
    std::vector<uint32_t> got;
    StructuralIterator it(s.data(), len);
    for (size_t i = it.Next(); i < len; i = it.Next()) {
      got.push_back(static_cast<uint32_t>(i));
    }
    EXPECT_EQ(got, expected) << "round " << round << ", len " << len;
    // Exhausted iterators keep returning len.
    EXPECT_EQ(it.Next(), len);
    EXPECT_EQ(it.Next(), len);
  }
}

TEST(ByteScan, ForEachStructuralMatchesScalarScan) {
  Rng rng(406);
  for (int round = 0; round < 300; ++round) {
    size_t len = rng.NextBelow(500);
    std::string s = RandomMixedBuffer(&rng, len);
    std::vector<uint32_t> expected = ScalarStructuralPositions(s);
    std::vector<uint32_t> got;
    ForEachStructural(s.data(), len, [&](size_t i) {
      got.push_back(static_cast<uint32_t>(i));
    });
    EXPECT_EQ(got, expected) << "round " << round << ", len " << len;
  }
}

// The dense fast path (mask == all-ones) must fire on fully structural
// blocks and still visit every byte exactly once, in order.
TEST(ByteScan, ForEachStructuralDenseBlocks) {
  std::string s(256, 'q');
  size_t calls = 0;
  size_t next = 0;
  ForEachStructural(s.data(), s.size(), [&](size_t i) {
    EXPECT_EQ(i, next++);
    ++calls;
  });
  EXPECT_EQ(calls, s.size());
}

TEST(ByteScan, KernelNameIsKnown) {
  std::string name = ByteScanKernelName();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "swar") << name;
}

}  // namespace
}  // namespace sst
