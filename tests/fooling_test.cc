#include <memory>

#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "classes/syntactic_classes.h"
#include "dra/machine.h"
#include "dra/tag_dfa.h"
#include "eval/adapters.h"
#include "eval/el_synopsis.h"
#include "eval/registerless_query.h"
#include "eval/stackless_query.h"
#include "fooling/fooling.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

Dfa Compile(const char* pattern) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  return CompileRegex(pattern, alphabet);
}

TEST(Witnesses, NonEFlatWitnessSatisfiesLemma312Equations) {
  Dfa dfa = Compile("ab");  // not E-flat
  std::optional<NonEFlatWitness> witness = ExtractNonEFlatWitness(dfa);
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(witness->s.empty());
  EXPECT_FALSE(witness->u.empty());
  EXPECT_FALSE(witness->t.empty());
  EXPECT_EQ(dfa.Run(dfa.initial, witness->s), witness->p);
  EXPECT_EQ(dfa.Run(witness->p, witness->u), witness->q);
  EXPECT_EQ(dfa.Run(witness->q, witness->u), witness->q);
  EXPECT_FALSE(dfa.accepting[dfa.Run(witness->q, witness->x)]);
  EXPECT_NE(dfa.accepting[dfa.Run(witness->p, witness->t)],
            dfa.accepting[dfa.Run(witness->q, witness->t)]);
}

TEST(Witnesses, NonHarWitnessSatisfiesLemma316Equations) {
  Dfa dfa = Compile(".*ab");  // not HAR
  std::optional<NonHarWitness> witness = ExtractNonHarWitness(dfa);
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(witness->s.empty());
  EXPECT_FALSE(witness->u.empty());
  EXPECT_FALSE(witness->v.empty());
  EXPECT_FALSE(witness->w.empty());
  EXPECT_FALSE(witness->t.empty());
  EXPECT_GE(witness->u.size(), witness->t.size());
  EXPECT_EQ(dfa.Run(dfa.initial, witness->s), witness->r);
  EXPECT_EQ(dfa.Run(witness->r, witness->v), witness->p);
  EXPECT_EQ(dfa.Run(witness->r, witness->w), witness->q);
  EXPECT_EQ(dfa.Run(witness->p, witness->u), witness->r);
  EXPECT_EQ(dfa.Run(witness->q, witness->u), witness->r);
  EXPECT_TRUE(dfa.accepting[dfa.Run(witness->p, witness->t)]);
  EXPECT_FALSE(dfa.accepting[dfa.Run(witness->q, witness->t)]);
}

TEST(Witnesses, NoneForLanguagesInTheClass) {
  EXPECT_FALSE(ExtractNonEFlatWitness(Compile("a.*b")).has_value());
  EXPECT_FALSE(ExtractNonHarWitness(Compile(".*a.*b")).has_value());
}

TEST(Lemma312Gadget, GroundTruthsDifferForEveryExponent) {
  Dfa dfa = Compile("ab");
  std::optional<NonEFlatWitness> witness = ExtractNonEFlatWitness(dfa);
  ASSERT_TRUE(witness.has_value());
  for (int exponent = 1; exponent <= 6; ++exponent) {
    FoolingPair pair = BuildLemma312Trees(*witness, exponent, dfa);
    EXPECT_TRUE(TreeInExists(dfa, pair.in_el));
    EXPECT_FALSE(TreeInExists(dfa, pair.out_el));
  }
}

TEST(Lemma316Gadget, GroundTruthsDifferForEveryExponent) {
  Dfa dfa = Compile(".*ab");
  std::optional<NonHarWitness> witness = ExtractNonHarWitness(dfa);
  ASSERT_TRUE(witness.has_value());
  for (int exponent = 1; exponent <= 4; ++exponent) {
    FoolingPair pair = BuildLemma316Trees(*witness, exponent, dfa);
    EXPECT_TRUE(TreeInExists(dfa, pair.in_el));
    EXPECT_FALSE(TreeInExists(dfa, pair.out_el));
  }
}

TEST(Fooling, SynopsisAutomatonFooledOnNonEFlatLanguage) {
  // The Lemma 3.11 construction applied outside its precondition is a
  // legitimate finite-state victim; Lemma 3.12's pair must defeat it.
  Dfa dfa = Compile("ab");
  ASSERT_FALSE(IsEFlat(dfa));
  ElSynopsisRecognizer victim(dfa, /*blind=*/false);
  std::optional<FoolingPair> pair =
      FoolExistsRecognizer(dfa, &victim, /*use_har_gadget=*/false, 16);
  ASSERT_TRUE(pair.has_value());
  EXPECT_TRUE(TreeInExists(dfa, pair->in_el));
  EXPECT_FALSE(TreeInExists(dfa, pair->out_el));
  EXPECT_EQ(RunAcceptor(&victim, Encode(pair->in_el)),
            RunAcceptor(&victim, Encode(pair->out_el)));
}

TEST(Fooling, RegisterlessEvaluatorAdapterFooledToo) {
  // A second finite-state victim: the Lemma 3.5 evaluator wrapped in the
  // EL adapter.
  Dfa dfa = Compile("ab");
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  ExistsAdapter victim(std::make_unique<TagDfaMachine>(&evaluator));
  std::optional<FoolingPair> pair =
      FoolExistsRecognizer(dfa, &victim, /*use_har_gadget=*/false, 16);
  ASSERT_TRUE(pair.has_value());
}

TEST(Fooling, StacklessEvaluatorFooledOnNonHarLanguage) {
  // Theorem 3.1's hard direction, demonstrated: the Lemma 3.8 machine (a
  // DRA) applied to Γ*ab is defeated by the Lemma 3.16 gadget.
  Dfa dfa = Compile(".*ab");
  ASSERT_FALSE(IsHar(dfa));
  ExistsAdapter victim(
      std::make_unique<StacklessQueryEvaluator>(dfa, /*blind=*/false));
  std::optional<FoolingPair> pair =
      FoolExistsRecognizer(dfa, &victim, /*use_har_gadget=*/true, 8);
  ASSERT_TRUE(pair.has_value());
  EXPECT_TRUE(TreeInExists(dfa, pair->in_el));
  EXPECT_FALSE(TreeInExists(dfa, pair->out_el));
}

TEST(Fooling, QueryCounterexampleSearchWorks) {
  Dfa dfa = Compile(".*ab");
  StacklessQueryEvaluator victim(dfa, /*blind=*/false);
  std::optional<Tree> counterexample =
      FindQueryCounterexample(dfa, &victim, /*term_encoded=*/false, 2000, 5);
  ASSERT_TRUE(counterexample.has_value());
  EXPECT_NE(RunQueryOnTree(&victim, *counterexample),
            SelectNodes(dfa, *counterexample));

  // And no counterexample for a language the construction handles.
  Dfa har = Compile(".*a.*b");
  StacklessQueryEvaluator good(har, /*blind=*/false);
  EXPECT_FALSE(FindQueryCounterexample(har, &good, false, 500, 7)
                   .has_value());
}

TEST(TheoremB1Fooling, BlindWitnessSatisfiesTheEquations) {
  Dfa dfa = Compile("ab");  // not E-flat, hence not blindly E-flat
  std::optional<BlindNonEFlatWitness> witness =
      ExtractBlindNonEFlatWitness(dfa);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->u1.size(), witness->u2.size());
  EXPECT_EQ(dfa.Run(dfa.initial, witness->s), witness->p);
  EXPECT_EQ(dfa.Run(witness->p, witness->u1), witness->q);
  EXPECT_EQ(dfa.Run(witness->q, witness->u2), witness->q);
  EXPECT_FALSE(dfa.accepting[dfa.Run(witness->q, witness->x)]);
  EXPECT_NE(dfa.accepting[dfa.Run(witness->p, witness->t)],
            dfa.accepting[dfa.Run(witness->q, witness->t)]);
}

TEST(TheoremB1Fooling, Fig7GroundTruthsDiffer) {
  Dfa dfa = Compile("ab");
  std::optional<BlindNonEFlatWitness> witness =
      ExtractBlindNonEFlatWitness(dfa);
  ASSERT_TRUE(witness.has_value());
  for (int exponent = 1; exponent <= 5; ++exponent) {
    FoolingPair pair = BuildBlindLemma312Trees(*witness, exponent, dfa);
    EXPECT_TRUE(TreeInExists(dfa, pair.in_el)) << exponent;
    EXPECT_FALSE(TreeInExists(dfa, pair.out_el)) << exponent;
  }
}

TEST(TheoremB1Fooling, BlindSynopsisFooledOnTermEncoding) {
  // The blind synopsis automaton, forced onto a non-blindly-E-flat
  // language, cannot separate the Fig 7 pair on term-encoded streams.
  Dfa dfa = Compile("ab");
  ASSERT_FALSE(IsBlindEFlat(dfa));
  ElSynopsisRecognizer victim(dfa, /*blind=*/true);
  std::optional<FoolingPair> pair =
      FoolTermExistsRecognizer(dfa, &victim, /*use_har_gadget=*/false, 16);
  ASSERT_TRUE(pair.has_value());
  EXPECT_TRUE(TreeInExists(dfa, pair->in_el));
  EXPECT_FALSE(TreeInExists(dfa, pair->out_el));
}

TEST(TheoremB1Fooling, RandomNonBlindEFlatLanguagesYieldCertificates) {
  Rng rng(811);
  std::vector<Dfa> languages = testing::SampleLanguages(
      10, 2, [](const Dfa& d) { return !IsBlindEFlat(d); }, &rng);
  ASSERT_GE(languages.size(), 5u);
  for (const Dfa& dfa : languages) {
    std::optional<BlindNonEFlatWitness> witness =
        ExtractBlindNonEFlatWitness(dfa);
    ASSERT_TRUE(witness.has_value());
    for (int exponent : {1, 2}) {
      FoolingPair pair = BuildBlindLemma312Trees(*witness, exponent, dfa);
      ASSERT_TRUE(TreeInExists(dfa, pair.in_el));
      ASSERT_FALSE(TreeInExists(dfa, pair.out_el));
    }
  }
}

TEST(TheoremB2Fooling, BlindHarWitnessAndGadget) {
  // Fig 2's language (even number of a's over {a,b}) is HAR but not
  // blindly HAR — the flagship separation of the two encodings.
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("(b|ab*a)*", alphabet);
  ASSERT_FALSE(IsBlindHar(dfa));
  std::optional<BlindNonHarWitness> witness =
      ExtractBlindNonHarWitness(dfa);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->u1.size(), witness->u2.size());
  EXPECT_EQ(dfa.Run(witness->p, witness->u1), witness->r);
  EXPECT_EQ(dfa.Run(witness->q, witness->u2), witness->r);
  EXPECT_EQ(dfa.Run(witness->r, witness->v), witness->p);
  EXPECT_EQ(dfa.Run(witness->r, witness->w), witness->q);
  EXPECT_TRUE(dfa.accepting[dfa.Run(witness->p, witness->t)]);
  EXPECT_FALSE(dfa.accepting[dfa.Run(witness->q, witness->t)]);
  for (int exponent = 1; exponent <= 3; ++exponent) {
    FoolingPair pair = BuildBlindLemma316Trees(*witness, exponent, dfa);
    EXPECT_TRUE(TreeInExists(dfa, pair.in_el)) << exponent;
    EXPECT_FALSE(TreeInExists(dfa, pair.out_el)) << exponent;
  }
}

TEST(TheoremB2Fooling, BlindStacklessEvaluatorFooledOnTermEncoding) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("(b|ab*a)*", alphabet);
  ExistsAdapter victim(
      std::make_unique<StacklessQueryEvaluator>(dfa, /*blind=*/true));
  std::optional<FoolingPair> pair =
      FoolTermExistsRecognizer(dfa, &victim, /*use_har_gadget=*/true, 8);
  ASSERT_TRUE(pair.has_value());
  EXPECT_TRUE(TreeInExists(dfa, pair->in_el));
  EXPECT_FALSE(TreeInExists(dfa, pair->out_el));
}

TEST(Example29, ConfigurationCountIsPolynomialInN) {
  // Any fixed DRA reaches at most k·(n+2)^l distinct configurations on the
  // 2^(n-2) Kn prefixes; with one register and few states the count is
  // dwarfed by the number of prefixes already for moderate n.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  std::optional<Dra> dra =
      MaterializeStacklessQueryDra(dfa, /*blind=*/false, 50000);
  ASSERT_TRUE(dra.has_value());
  int n = 12;
  int configurations = CountKnPrefixConfigurations(*dra, n);
  EXPECT_LT(configurations, 1 << (n - 2));
  EXPECT_LE(configurations,
            dra->num_states * (1 << dra->num_registers) * (n + 2));
}

TEST(Example29, PrefixCollisionExists) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  std::optional<Dra> dra =
      MaterializeStacklessQueryDra(dfa, /*blind=*/false, 50000);
  ASSERT_TRUE(dra.has_value());
  std::optional<std::pair<uint32_t, uint32_t>> collision =
      FindKnPrefixCollision(*dra, 12);
  ASSERT_TRUE(collision.has_value());
  EXPECT_NE(collision->first, collision->second);
}

}  // namespace
}  // namespace sst
