#include <gtest/gtest.h>

#include "base/rng.h"
#include "dra/machine.h"
#include "dra/offset_dra.h"
#include "dra/paper_examples.h"
#include "test_util.h"
#include "trees/encoding.h"

namespace sst {
namespace {

constexpr Symbol kA = 0, kB = 1;

// Example 2.7's minimal-a-with-b-child machine, written natively with
// offset comparisons: register 0 (offset 0) pins the a-node's depth for
// unpinning; register 1 (offset 1) fires kEqual exactly at its children.
OffsetDra BuildMinimalAWithBChild() {
  constexpr int kScan = 0, kPinned = 1, kMatched = 2;
  OffsetDra machine;
  machine.dra = Dra::Create(3, 3, 2);
  machine.offset = {0, 1};
  Dra& dra = machine.dra;
  dra.initial = kScan;
  dra.accepting = {false, false, true};
  for (Symbol s = 0; s < 3; ++s) {
    dra.SetAction(kScan, false, s, {-1, -1}, s == kA ? 0b11 : 0,
                  s == kA ? kPinned : kScan);
    dra.SetAction(kScan, true, s, {-1, -1}, 0, kScan);
    // Children of the pinned node read kEqual on the offset-1 register.
    dra.SetAction(kPinned, false, s, {-1, -1}, 0, kPinned);
    if (s == kB) {
      dra.SetAction(kPinned, false, s, {-1, Dra::kEqual}, 0, kMatched);
    }
    // Unpin when the depth drops below the pinned node.
    dra.SetAction(kPinned, true, s, {-1, -1}, 0, kPinned);
    dra.SetAction(kPinned, true, s, {Dra::kGreater, -1}, 0, kScan);
    dra.SetAction(kMatched, false, s, {-1, -1}, 0, kMatched);
    dra.SetAction(kMatched, true, s, {-1, -1}, 0, kMatched);
  }
  return machine;
}

TEST(OffsetDra, Example27MachineMatchesHandwrittenInterpreter) {
  OffsetDra machine = BuildMinimalAWithBChild();
  OffsetDraRunner runner(&machine);
  MinimalAWithBChildMachine reference(kA, kB);
  Rng rng(3);
  for (const Tree& tree : testing::SampleTrees(300, 3, &rng)) {
    EventStream events = Encode(tree);
    ASSERT_EQ(RunAcceptor(&runner, events),
              RunAcceptor(&reference, events));
  }
}

TEST(OffsetDra, CompilationToPlainDraIsExact) {
  OffsetDra machine = BuildMinimalAWithBChild();
  std::optional<Dra> compiled = CompileOffsetDra(machine, 100000);
  ASSERT_TRUE(compiled.has_value());
  EXPECT_EQ(compiled->num_registers, 3);  // (0) + (0,1) shadows
  OffsetDraRunner runner(&machine);
  DraRunner plain(&*compiled);
  Rng rng(5);
  for (const Tree& tree : testing::SampleTrees(300, 3, &rng)) {
    EventStream events = Encode(tree);
    ASSERT_EQ(RunAcceptor(&plain, events), RunAcceptor(&runner, events));
  }
}

TEST(OffsetDra, RandomMachinesCompileToEquivalentPlainDras) {
  // Property sweep realizing the Section 2.1 claim on arbitrary tables:
  // offset machine and compiled plain DRA agree on every tree, including
  // pre-selection at every opening tag.
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    OffsetDra machine;
    int num_registers = 1 + static_cast<int>(rng.NextBelow(2));
    machine.dra = Dra::Create(3, 2, num_registers);
    machine.offset.clear();
    for (int r = 0; r < num_registers; ++r) {
      machine.offset.push_back(static_cast<int>(rng.NextBelow(3)));
    }
    Dra& dra = machine.dra;
    dra.initial = 0;
    for (int q = 0; q < 3; ++q) {
      dra.accepting[q] = rng.NextBool(0.5);
    }
    for (size_t i = 0; i < dra.table.size(); ++i) {
      dra.table[i].next = static_cast<int>(rng.NextBelow(3));
      dra.table[i].load_mask = static_cast<uint32_t>(
          rng.NextBelow(uint64_t{1} << num_registers));
    }
    std::optional<Dra> compiled = CompileOffsetDra(machine, 200000);
    ASSERT_TRUE(compiled.has_value()) << trial;
    OffsetDraRunner runner(&machine);
    DraRunner plain(&*compiled);
    for (const Tree& tree : testing::SampleTrees(40, 2, &rng)) {
      ASSERT_EQ(RunQueryOnTree(&plain, tree), RunQueryOnTree(&runner, tree))
          << trial;
      EventStream events = Encode(tree);
      ASSERT_EQ(RunAcceptor(&plain, events), RunAcceptor(&runner, events))
          << trial;
    }
  }
}

TEST(OffsetDra, ZeroOffsetsReduceToPlainSemantics) {
  // With all offsets zero the runner must agree with DraRunner directly.
  Rng rng(11);
  OffsetDra machine;
  machine.dra = Dra::Create(2, 2, 1);
  machine.offset = {0};
  machine.dra.accepting = {false, true};
  for (size_t i = 0; i < machine.dra.table.size(); ++i) {
    machine.dra.table[i].next = static_cast<int>(rng.NextBelow(2));
    machine.dra.table[i].load_mask =
        static_cast<uint32_t>(rng.NextBelow(2));
  }
  OffsetDraRunner offset_runner(&machine);
  DraRunner plain(&machine.dra);
  for (const Tree& tree : testing::SampleTrees(100, 2, &rng)) {
    EventStream events = Encode(tree);
    ASSERT_EQ(RunAcceptor(&offset_runner, events),
              RunAcceptor(&plain, events));
  }
}

}  // namespace
}  // namespace sst
