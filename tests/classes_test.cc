#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/dfa.h"
#include "automata/minimize.h"
#include "automata/random_dfa.h"
#include "base/rng.h"
#include "classes/syntactic_classes.h"

namespace sst {
namespace {

Dfa Compile(const char* pattern) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  return CompileRegex(pattern, alphabet);
}

// --- Example 2.12 / Fig 3: the paper's running examples -------------------

TEST(PaperExamples, Fig3a_AThenAnyThenB_IsAlmostReversible) {
  // /a//b  ==  a Γ* b : registerless and stackless (Example 2.12, col 1).
  Dfa dfa = Compile("a.*b");
  EXPECT_TRUE(IsAlmostReversible(dfa));
  EXPECT_TRUE(IsHar(dfa));
  EXPECT_TRUE(IsEFlat(dfa));
  EXPECT_TRUE(IsAFlat(dfa));
  EXPECT_FALSE(IsReversible(dfa));  // the letter a is not injective (Fig 3)
}

TEST(PaperExamples, Fig3b_AB_IsHarButNotAlmostReversible) {
  // /a/b  ==  a b : stackless but not registerless (Example 2.12, col 2).
  Dfa dfa = Compile("ab");
  EXPECT_FALSE(IsAlmostReversible(dfa));
  EXPECT_TRUE(IsHar(dfa));
  EXPECT_TRUE(IsRTrivial(dfa));  // finite language: all SCCs trivial
  // Finite languages are A-flat but (here) not E-flat (Section 3.3).
  EXPECT_TRUE(IsAFlat(dfa));
  EXPECT_FALSE(IsEFlat(dfa));
}

TEST(PaperExamples, Fig3c_AnyAAnyB_IsHarButNeitherARNorRTrivial) {
  // //a//b  ==  Γ* a Γ* b : stackless but not registerless.
  Dfa dfa = Compile(".*a.*b");
  EXPECT_FALSE(IsAlmostReversible(dfa));
  EXPECT_FALSE(IsRTrivial(dfa));
  EXPECT_TRUE(IsHar(dfa));
}

TEST(PaperExamples, Fig3d_AnyAB_IsNotHar) {
  // //a/b  ==  Γ* a b : not even stackless (Examples 2.7 / 2.12, col 4).
  Dfa dfa = Compile(".*ab");
  EXPECT_FALSE(IsHar(dfa));
  EXPECT_FALSE(IsAlmostReversible(dfa));
}

TEST(PaperExamples, Example212TableReproduced) {
  // The full table of Example 2.12 (markup encoding).
  struct Row {
    const char* regex;
    bool registerless;
    bool stackless;
  };
  const Row rows[] = {
      {"a.*b", true, true},
      {"ab", false, true},
      {".*a.*b", false, true},
      {".*ab", false, false},
  };
  for (const Row& row : rows) {
    Classification c = Classify(Compile(row.regex));
    EXPECT_EQ(c.QueryRegisterless(), row.registerless) << row.regex;
    EXPECT_EQ(c.QueryStackless(), row.stackless) << row.regex;
  }
}

TEST(PaperExamples, Example212TableUnderTermEncoding) {
  // Section 4.2: under the term encoding the first RPQ stays registerless,
  // the middle two stay stackless but not registerless, the last is not
  // stackless.
  struct Row {
    const char* regex;
    bool registerless;
    bool stackless;
  };
  const Row rows[] = {
      {"a.*b", true, true},
      {"ab", false, true},
      {".*a.*b", false, true},
      {".*ab", false, false},
  };
  for (const Row& row : rows) {
    Classification c = Classify(Compile(row.regex));
    EXPECT_EQ(c.TermQueryRegisterless(), row.registerless) << row.regex;
    EXPECT_EQ(c.TermQueryStackless(), row.stackless) << row.regex;
  }
}

TEST(PaperExamples, Fig2ReversibleButNotBlindlyHar) {
  // An even number of a's (the paper writes (b*a b*a b*)*): the minimal
  // automaton is the two-state reversible automaton of Fig 2. Registerless
  // under markup, but not even stackless under the term encoding (§4.2).
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("(b|ab*a)*", alphabet);
  EXPECT_EQ(dfa.num_states, 2);
  EXPECT_TRUE(IsReversible(dfa));
  EXPECT_TRUE(IsAlmostReversible(dfa));
  EXPECT_TRUE(IsHar(dfa));
  EXPECT_FALSE(IsBlindHar(dfa));
  EXPECT_FALSE(IsBlindAlmostReversible(dfa));
}

// --- Structural properties (Lemmas 3.7, 3.10 and Section 3 remarks) -------

TEST(ClassProperties, FiniteLanguagesAreAFlat) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    Dfa dfa = Minimize(RandomFiniteLanguageDfa(5, 2, 0.5, &rng));
    EXPECT_TRUE(IsAFlat(dfa));
    EXPECT_TRUE(IsBlindAFlat(dfa));
    // Co-finite languages are E-flat.
    EXPECT_TRUE(IsEFlat(Complement(dfa)));
  }
}

TEST(ClassProperties, RTrivialImpliesHar) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    Dfa dfa = Minimize(RandomRTrivialDfa(8, 2, 0.4, &rng));
    if (IsRTrivial(dfa)) {
      EXPECT_TRUE(IsHar(dfa));
      EXPECT_TRUE(IsBlindHar(dfa));  // Section 4.2: R-trivial => blindly HAR
    }
  }
}

TEST(ClassProperties, AlmostReversibleImpliesHarAndBothFlat) {
  // Lemma 3.10(2): AR <=> A-flat and E-flat; by definition AR => HAR.
  Rng rng(21);
  int ar_seen = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Dfa dfa = Minimize(RandomPermutationDfa(5, 2, 0.5, &rng));
    if (IsAlmostReversible(dfa)) {
      ++ar_seen;
      EXPECT_TRUE(IsHar(dfa));
      EXPECT_TRUE(IsEFlat(dfa));
      EXPECT_TRUE(IsAFlat(dfa));
    }
  }
  EXPECT_GT(ar_seen, 0);  // the generator does produce AR languages
}

TEST(ClassProperties, Lemma310Duality) {
  // (1) L is A-flat iff L^c is E-flat; (2) AR <=> A-flat and E-flat.
  Rng rng(33);
  for (int trial = 0; trial < 60; ++trial) {
    Dfa dfa = Minimize(RandomDfa(7, 2, 0.4, &rng));
    Dfa comp = Complement(dfa);  // complement of minimal DFA is minimal
    EXPECT_EQ(IsAFlat(dfa), IsEFlat(comp));
    EXPECT_EQ(IsEFlat(dfa), IsAFlat(comp));
    EXPECT_EQ(IsAlmostReversible(dfa), IsEFlat(dfa) && IsAFlat(dfa));
    // Blind analogues (Theorem B.1's analogue of Lemma 3.10).
    EXPECT_EQ(IsBlindAFlat(dfa), IsBlindEFlat(comp));
    EXPECT_EQ(IsBlindAlmostReversible(dfa),
              IsBlindEFlat(dfa) && IsBlindAFlat(dfa));
  }
}

TEST(ClassProperties, HarClosedUnderComplement) {
  // Lemma 3.7 (and its blind analogue).
  Rng rng(45);
  for (int trial = 0; trial < 60; ++trial) {
    Dfa dfa = Minimize(RandomDfa(7, 2, 0.4, &rng));
    Dfa comp = Complement(dfa);
    EXPECT_EQ(IsHar(dfa), IsHar(comp));
    EXPECT_EQ(IsBlindHar(dfa), IsBlindHar(comp));
  }
}

TEST(ClassProperties, BlindClassesAreStricter) {
  // Blind meet is coarser than meet, so every blind class is contained in
  // its plain counterpart.
  Rng rng(57);
  for (int trial = 0; trial < 60; ++trial) {
    Dfa dfa = Minimize(RandomDfa(6, 2, 0.4, &rng));
    if (IsBlindAlmostReversible(dfa)) {
      EXPECT_TRUE(IsAlmostReversible(dfa));
    }
    if (IsBlindHar(dfa)) {
      EXPECT_TRUE(IsHar(dfa));
    }
    if (IsBlindEFlat(dfa)) {
      EXPECT_TRUE(IsEFlat(dfa));
    }
    if (IsBlindAFlat(dfa)) {
      EXPECT_TRUE(IsAFlat(dfa));
    }
  }
}

TEST(ClassProperties, ViolationWitnessesAreMeaningful) {
  Dfa dfa = Compile(".*ab");  // not HAR
  ClassViolation violation;
  ASSERT_FALSE(IsHar(dfa, &violation));
  EXPECT_GE(violation.p, 0);
  EXPECT_GE(violation.q, 0);
  EXPECT_GE(violation.component, 0);
  EXPECT_NE(violation.p, violation.q);

  Dfa ab = Compile("ab");  // not E-flat
  ASSERT_FALSE(IsEFlat(ab, &violation));
  EXPECT_GE(violation.p, 0);
  EXPECT_GE(violation.q, 0);
}

TEST(Classification, ToStringMentionsAllClasses) {
  Classification c = Classify(Compile("a.*b"));
  std::string text = c.ToString();
  EXPECT_NE(text.find("almost-reversible: yes"), std::string::npos);
  EXPECT_NE(text.find("HAR:               yes"), std::string::npos);
}

}  // namespace
}  // namespace sst
