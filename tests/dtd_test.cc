#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "base/check.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "classes/syntactic_classes.h"
#include "dra/machine.h"
#include "dtd/path_dtd.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

constexpr Symbol kA = 0, kB = 1, kC = 2;

// A simple document schema: a -> (b)^+, b -> (c)^*, c -> ()^* over {a,b,c}.
PathDtd SimpleDtd() {
  PathDtd dtd;
  dtd.num_symbols = 3;
  dtd.initial_symbol = kA;
  dtd.productions.resize(3);
  dtd.productions[kA] = {{kB}, /*allows_leaf=*/false};
  dtd.productions[kB] = {{kC}, /*allows_leaf=*/true};
  dtd.productions[kC] = {{}, /*allows_leaf=*/true};
  return dtd;
}

// Fig 6: specialized DTD a -> (a+b+ã)*, b -> (a+b+ã)*, ã -> c*,
// c -> (a+b)* with projection ã |-> a. Extended alphabet: a'=0, b'=1,
// ã'=2, c'=3; projected alphabet {a, b, c}.
SpecializedPathDtd Fig6Dtd() {
  SpecializedPathDtd result;
  result.dtd.num_symbols = 4;
  result.dtd.initial_symbol = 0;
  result.dtd.productions.resize(4);
  result.dtd.productions[0] = {{0, 1, 2}, true};  // a
  result.dtd.productions[1] = {{0, 1, 2}, true};  // b
  result.dtd.productions[2] = {{3}, true};        // ã
  result.dtd.productions[3] = {{0, 1}, true};     // c
  result.projection = {kA, kB, kA, kC};
  result.num_projected_symbols = 3;
  return result;
}

Tree FromCompact(const char* text) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::optional<EventStream> events = ParseCompactMarkup(alphabet, text);
  SST_CHECK(events.has_value());
  std::optional<Tree> tree = Decode(*events);
  SST_CHECK(tree.has_value());
  return *tree;
}

TEST(PathDtd, DirectValidation) {
  PathDtd dtd = SimpleDtd();
  EXPECT_TRUE(SatisfiesPathDtd(dtd, FromCompact("abBA")));
  EXPECT_TRUE(SatisfiesPathDtd(dtd, FromCompact("abcCBbBA")));
  EXPECT_FALSE(SatisfiesPathDtd(dtd, FromCompact("aA")));      // a -> + needs a child
  EXPECT_FALSE(SatisfiesPathDtd(dtd, FromCompact("acCA")));    // c not allowed under a
  EXPECT_FALSE(SatisfiesPathDtd(dtd, FromCompact("bB")));      // wrong root
  EXPECT_FALSE(SatisfiesPathDtd(dtd, FromCompact("abaABA")));  // a under b
}

TEST(PathDtd, TreeLanguageIsForallOfPathLanguage) {
  // Section 4.1: a (non-specialized) path DTD defines exactly AL for the
  // path language of its path automaton.
  PathDtd dtd = SimpleDtd();
  Dfa minimal = PathLanguageMinimalDfa(dtd);
  Rng rng(3);
  int valid_count = 0;
  for (const Tree& tree : testing::SampleTrees(300, 3, &rng)) {
    bool direct = SatisfiesPathDtd(dtd, tree);
    EXPECT_EQ(direct, TreeInForall(minimal, tree));
    valid_count += direct ? 1 : 0;
  }
  // Random trees rarely conform; add known positive cases.
  EXPECT_TRUE(TreeInForall(minimal, FromCompact("abcCBbBA")));
  EXPECT_FALSE(TreeInForall(minimal, FromCompact("aA")));
}

TEST(PathDtd, SimpleDtdIsRegisterlessValidatable) {
  // The path language of SimpleDtd is finite-depth (a b c? at most), hence
  // finite and A-flat.
  EXPECT_TRUE(IsRegisterlessWeaklyValidatable(SimpleDtd()));
}

TEST(PathDtd, RegisterlessValidatorMatchesDirectSemantics) {
  PathDtd dtd = SimpleDtd();
  ASSERT_TRUE(IsRegisterlessWeaklyValidatable(dtd));
  std::unique_ptr<StreamMachine> validator =
      BuildRegisterlessDtdValidator(dtd);
  Rng rng(5);
  for (const Tree& tree : testing::SampleTrees(300, 3, &rng)) {
    EXPECT_EQ(RunAcceptor(validator.get(), Encode(tree)),
              SatisfiesPathDtd(dtd, tree));
  }
  EXPECT_TRUE(RunAcceptor(validator.get(), Encode(FromCompact("abcCBbBA"))));
}

TEST(PathDtd, StackValidatorIsExact) {
  PathDtd dtd = SimpleDtd();
  StackDtdValidator validator(&dtd);
  Rng rng(7);
  for (const Tree& tree : testing::SampleTrees(300, 3, &rng)) {
    EXPECT_EQ(RunAcceptor(&validator, Encode(tree)),
              SatisfiesPathDtd(dtd, tree));
  }
}

TEST(Fig6, SpecializedDtdValidationSemantics) {
  SpecializedPathDtd dtd = Fig6Dtd();
  // The root must be the plain initial symbol a, so a c-child is only
  // reachable one level down through an ã-relabelled inner a.
  EXPECT_FALSE(SatisfiesSpecializedPathDtd(dtd, FromCompact("acCA")));
  EXPECT_TRUE(SatisfiesSpecializedPathDtd(dtd, FromCompact("aacCAA")));
  // Root a with b-child: label the root a.
  EXPECT_TRUE(SatisfiesSpecializedPathDtd(dtd, FromCompact("abBA")));
  // Root a with both c- and b-children: no single labelling works
  // (ã allows only c children; a/b do not allow c children).
  EXPECT_FALSE(SatisfiesSpecializedPathDtd(dtd, FromCompact("acCbBA")));
  // c may only appear under ã; and under c only a/b.
  EXPECT_FALSE(SatisfiesSpecializedPathDtd(dtd, FromCompact("accCCA")));
}

TEST(Fig6, MinimalAutomatonMatchesFig6b) {
  // Determinizing + minimizing the Fig 6a NFA yields the automaton of
  // Fig 6b; ours carries an explicit initial state and rejecting sink in
  // addition to the drawn core, for 5 states in total.
  SpecializedPathDtd dtd = Fig6Dtd();
  Dfa minimal = PathLanguageMinimalDfa(dtd);
  EXPECT_EQ(minimal.num_states, 5);
}

TEST(Fig6, NotAFlatAfterDeterminization) {
  // The paper's point: the raw specialized automaton looks A-flat, but the
  // criterion must be applied to the determinized, minimized automaton —
  // and there it fails.
  SpecializedPathDtd dtd = Fig6Dtd();
  Dfa minimal = PathLanguageMinimalDfa(dtd);
  EXPECT_FALSE(IsAFlat(minimal));
}

TEST(Fig6, PathLanguageSanity) {
  // Words in the projected path language: a, ab*, a c (a+b)..., etc.
  SpecializedPathDtd dtd = Fig6Dtd();
  Dfa minimal = PathLanguageMinimalDfa(dtd);
  Alphabet alphabet = Alphabet::FromLetters("abc");
  EXPECT_TRUE(minimal.Accepts(WordFromString(alphabet, "a")));
  EXPECT_TRUE(minimal.Accepts(WordFromString(alphabet, "ab")));
  EXPECT_FALSE(minimal.Accepts(WordFromString(alphabet, "ac")));
  EXPECT_TRUE(minimal.Accepts(WordFromString(alphabet, "aac")));
  EXPECT_TRUE(minimal.Accepts(WordFromString(alphabet, "aaca")));
  EXPECT_FALSE(minimal.Accepts(WordFromString(alphabet, "aacc")));
  EXPECT_FALSE(minimal.Accepts(WordFromString(alphabet, "b")));
  EXPECT_FALSE(minimal.Accepts(WordFromString(alphabet, "c")));
}

}  // namespace
}  // namespace sst
