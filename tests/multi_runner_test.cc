#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automata/alphabet.h"
#include "automata/product.h"
#include "automata/selection_mask.h"
#include "base/rng.h"
#include "dra/multi_runner.h"
#include "dra/stream_error.h"
#include "engine/query_plan.h"
#include "engine/session.h"
#include "query/rpq.h"
#include "test_util.h"
#include "testing/fault_injection.h"
#include "trees/encoding.h"

namespace sst {
namespace {

std::shared_ptr<const QueryPlan> CompileXPath(const std::string& xpath,
                                              const Alphabet& alphabet,
                                              PlanOptions options = {}) {
  return QueryPlan::Compile(Rpq::FromXPath(xpath, alphabet), options);
}

// Registerless plans over {a, b, c}: the candidates every other test draws
// its batches from. Filtered by verdict so the suite never depends on the
// exact classification of any one query shape.
std::vector<std::shared_ptr<const QueryPlan>> RegisterlessPlans(
    const Alphabet& alphabet) {
  std::vector<std::shared_ptr<const QueryPlan>> plans;
  for (const char* xpath :
       {"/a//b", "/a//c", "/b//a", "/b//c", "/c//a", "/c//b", "/a", "/b"}) {
    auto plan = CompileXPath(xpath, alphabet);
    if (plan->kind() == EvaluatorKind::kRegisterless &&
        plan->tag_dfa() != nullptr && plan->fused() != nullptr) {
      plans.push_back(std::move(plan));
    }
  }
  return plans;
}

std::vector<const TagDfa*> Components(
    const std::vector<std::shared_ptr<const QueryPlan>>& plans) {
  std::vector<const TagDfa*> components;
  for (const auto& plan : plans) components.push_back(plan->tag_dfa());
  return components;
}

std::vector<std::string> MarkupDocuments(const Alphabet& alphabet, int count,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> documents;
  for (const Tree& tree : testing::SampleTrees(count, alphabet.size(), &rng)) {
    documents.push_back(ToCompactMarkup(alphabet, Encode(tree)));
  }
  return documents;
}

TEST(SelectionMask, NarrowBasics) {
  SelectionMask mask(8);
  EXPECT_FALSE(mask.Any());
  EXPECT_EQ(mask.Count(), 0);
  mask.Set(0);
  mask.Set(5);
  EXPECT_TRUE(mask.Any());
  EXPECT_TRUE(mask.Test(0));
  EXPECT_FALSE(mask.Test(1));
  EXPECT_TRUE(mask.Test(5));
  EXPECT_EQ(mask.Count(), 2);
  EXPECT_TRUE(mask.narrow());
  EXPECT_EQ(mask.word(), (uint64_t{1} << 0) | (uint64_t{1} << 5));

  int64_t counts[8] = {0};
  mask.AccumulateInto(counts);
  mask.AccumulateInto(counts);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[5], 2);
  EXPECT_EQ(counts[1], 0);
}

TEST(SelectionMask, WideBatches) {
  SelectionMask mask(130);
  EXPECT_FALSE(mask.narrow());
  mask.Set(3);
  mask.Set(64);
  mask.Set(129);
  EXPECT_TRUE(mask.Test(3));
  EXPECT_TRUE(mask.Test(64));
  EXPECT_TRUE(mask.Test(129));
  EXPECT_FALSE(mask.Test(63));
  EXPECT_FALSE(mask.Test(128));
  EXPECT_EQ(mask.Count(), 3);
  EXPECT_TRUE(mask.Any());

  std::vector<int64_t> counts(130, 0);
  mask.AccumulateInto(counts.data());
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(counts[64], 1);
  EXPECT_EQ(counts[129], 1);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, 3);

  SelectionMask other(130);
  other.Set(3);
  other.Set(64);
  other.Set(129);
  EXPECT_EQ(mask, other);
  other.Set(70);
  EXPECT_NE(mask, other);
}

// Satellite audit: the narrow/wide representation boundary. Exactly 64
// queries is the last single-word batch; 65 and 128 must spill into the
// wide representation with no bit lost at the seams (bits 63, 64, 127).
TEST(SelectionMask, BoundaryWidthsMatchScalarReference) {
  for (int arity : {64, 65, 128}) {
    SelectionMask mask(arity);
    EXPECT_EQ(mask.narrow(), arity <= 64) << arity;

    std::vector<bool> reference(static_cast<size_t>(arity), false);
    std::vector<int> bits = {0, arity / 2, arity - 1};
    if (arity > 64) {
      bits.push_back(63);  // last bit of the first word
      bits.push_back(64);  // first bit of the second word
    }
    Rng rng(static_cast<uint64_t>(arity));
    for (int extra = 0; extra < 10; ++extra) {
      bits.push_back(
          static_cast<int>(rng.NextBelow(static_cast<uint64_t>(arity))));
    }
    for (int bit : bits) {
      mask.Set(bit);
      reference[static_cast<size_t>(bit)] = true;
    }

    int want_count = 0;
    for (bool b : reference) want_count += static_cast<int>(b);
    EXPECT_EQ(mask.Count(), want_count) << arity;
    EXPECT_TRUE(mask.Any()) << arity;
    for (int i = 0; i < arity; ++i) {
      EXPECT_EQ(mask.Test(i), reference[static_cast<size_t>(i)])
          << "arity " << arity << " bit " << i;
    }

    std::vector<int64_t> counts(static_cast<size_t>(arity), 0);
    mask.AccumulateInto(counts.data());
    mask.AccumulateInto(counts.data());
    for (int i = 0; i < arity; ++i) {
      EXPECT_EQ(counts[static_cast<size_t>(i)],
                reference[static_cast<size_t>(i)] ? 2 : 0)
          << "arity " << arity << " bit " << i;
    }

    // Equality must compare the full width, not just the first word.
    SelectionMask twin(arity);
    for (int bit : bits) twin.Set(bit);
    EXPECT_EQ(mask, twin) << arity;
    if (!twin.Test(1)) {
      twin.Set(1);
      EXPECT_NE(mask, twin) << arity;
    }
  }
}

// The same boundary, end to end: batches of exactly 64, 65, and 128
// queries through the product runner, checked per query against the
// independent scalar (single-query fused) counts.
TEST(MultiTagDfaRunner, BatchWidth64And65And128MatchScalarReference) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto base = RegisterlessPlans(alphabet);
  ASSERT_GE(base.size(), 4u);
  for (int width : {64, 65, 128}) {
    std::vector<std::shared_ptr<const QueryPlan>> plans;
    for (int i = 0; i < width; ++i) {
      plans.push_back(base[static_cast<size_t>(i) % base.size()]);
    }
    auto product = BuildTagDfaProduct(Components(plans), 1 << 16);
    ASSERT_TRUE(product.has_value()) << width;
    EXPECT_EQ(product->arity, width);
    EXPECT_EQ(product->narrow, width <= 64);

    MultiTagDfaRunner runner(StreamFormat::kCompactMarkup, &alphabet,
                             nullptr, &*product, nullptr, nullptr);
    for (const std::string& doc :
         MarkupDocuments(alphabet, 10, 200 + static_cast<uint64_t>(width))) {
      std::vector<int64_t> counts = runner.CountSelections(doc);
      ASSERT_EQ(counts.size(), static_cast<size_t>(width));
      for (size_t q = 0; q < counts.size(); ++q) {
        EXPECT_EQ(counts[q], plans[q]->fused()->CountSelections(doc))
            << "width " << width << " query " << q << ": " << doc;
      }
    }
  }
}

TEST(TagDfaProduct, EagerCountsMatchComponentsOnRandomTrees) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plans = RegisterlessPlans(alphabet);
  ASSERT_GE(plans.size(), 4u);
  auto product = BuildTagDfaProduct(Components(plans), 1 << 16);
  ASSERT_TRUE(product.has_value());
  EXPECT_EQ(product->arity, static_cast<int>(plans.size()));
  EXPECT_TRUE(product->narrow);

  MultiTagDfaRunner runner(StreamFormat::kCompactMarkup, &alphabet,
                           /*tables=*/nullptr, &*product,
                           /*eager_fused=*/nullptr, /*lazy=*/nullptr);
  ASSERT_TRUE(runner.one_scan_eligible());
  EXPECT_EQ(runner.tier(), MultiTier::kFusedProduct);
  for (const std::string& doc : MarkupDocuments(alphabet, 30, 17)) {
    std::vector<int64_t> counts = runner.CountSelections(doc);
    ASSERT_EQ(counts.size(), plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      EXPECT_EQ(counts[i], plans[i]->fused()->CountSelections(doc)) << doc;
    }
  }
}

TEST(TagDfaProduct, EagerFusedByteTableMatchesTableFreeWalk) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plans = RegisterlessPlans(alphabet);
  ASSERT_GE(plans.size(), 2u);
  auto product = BuildTagDfaProduct(Components(plans), 1 << 16);
  ASSERT_TRUE(product.has_value());
  ByteTagDfaRunner fused(product->dfa, alphabet);

  MultiTagDfaRunner with_table(StreamFormat::kCompactMarkup, &alphabet,
                               nullptr, &*product, &fused, nullptr);
  MultiTagDfaRunner without_table(StreamFormat::kCompactMarkup, &alphabet,
                                  nullptr, &*product, nullptr, nullptr);
  for (const std::string& doc : MarkupDocuments(alphabet, 20, 23)) {
    EXPECT_EQ(with_table.CountSelections(doc),
              without_table.CountSelections(doc));
  }
  // Junk bytes self-loop in the fused table; both paths must agree there
  // too (unknown lowercase letters still sample acceptance).
  for (const char* doc : {"a zb BA", "aq b BA", "a!bB?A"}) {
    EXPECT_EQ(with_table.CountSelections(doc),
              without_table.CountSelections(doc))
        << doc;
  }
}

TEST(TagDfaProduct, EagerRespectsStateCap) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plans = RegisterlessPlans(alphabet);
  ASSERT_GE(plans.size(), 2u);
  EXPECT_FALSE(BuildTagDfaProduct(Components(plans), 1).has_value());
  EXPECT_TRUE(BuildTagDfaProduct(Components(plans), 1 << 16).has_value());
}

TEST(LazyProduct, MatchesEagerOnRandomTrees) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plans = RegisterlessPlans(alphabet);
  ASSERT_GE(plans.size(), 4u);
  auto eager = BuildTagDfaProduct(Components(plans), 1 << 16);
  ASSERT_TRUE(eager.has_value());
  LazyTagDfaProduct lazy(Components(plans), 1 << 16);

  MultiTagDfaRunner eager_runner(StreamFormat::kCompactMarkup, &alphabet,
                                 nullptr, &*eager, nullptr, nullptr);
  MultiTagDfaRunner lazy_runner(StreamFormat::kCompactMarkup, &alphabet,
                                nullptr, nullptr, nullptr, &lazy);
  EXPECT_EQ(lazy_runner.tier(), MultiTier::kLazyProduct);
  for (const std::string& doc : MarkupDocuments(alphabet, 30, 31)) {
    EXPECT_EQ(eager_runner.CountSelections(doc),
              lazy_runner.CountSelections(doc))
        << doc;
  }
  // Only reached states materialized, and never more than the full product.
  EXPECT_GT(lazy.num_states(), 0);
  EXPECT_LE(lazy.num_states(), eager->dfa.num_states);
  EXPECT_FALSE(lazy.overflowed());
}

TEST(LazyProduct, OverflowDemotesToWideModeWithIdenticalCounts) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plans = RegisterlessPlans(alphabet);
  ASSERT_GE(plans.size(), 4u);
  auto eager = BuildTagDfaProduct(Components(plans), 1 << 16);
  ASSERT_TRUE(eager.has_value());
  ASSERT_GT(eager->dfa.num_states, 2);

  // A cap below the reachable product forces mid-stream demotion.
  LazyTagDfaProduct lazy(Components(plans), 2);
  MultiTagDfaRunner eager_runner(StreamFormat::kCompactMarkup, &alphabet,
                                 nullptr, &*eager, nullptr, nullptr);
  MultiTagDfaRunner lazy_runner(StreamFormat::kCompactMarkup, &alphabet,
                                nullptr, nullptr, nullptr, &lazy);
  for (const std::string& doc : MarkupDocuments(alphabet, 30, 37)) {
    EXPECT_EQ(eager_runner.CountSelections(doc),
              lazy_runner.CountSelections(doc))
        << doc;
  }
  EXPECT_TRUE(lazy.overflowed());
  EXPECT_LE(lazy.num_states(), 2);

  // The chunked front-end latches wide mode per stream and reports it.
  std::string doc = MarkupDocuments(alphabet, 1, 41).front();
  ASSERT_TRUE(lazy_runner.Feed(doc) && lazy_runner.Finish());
  EXPECT_EQ(lazy_runner.active_tier(), MultiTier::kIndependent);
  lazy_runner.Reset();
  EXPECT_EQ(lazy_runner.active_tier(), MultiTier::kLazyProduct);
}

TEST(MultiTagDfaRunner, ChunkedFeedMatchesIndependentSelectors) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plans = RegisterlessPlans(alphabet);
  ASSERT_GE(plans.size(), 4u);
  auto eager = BuildTagDfaProduct(Components(plans), 1 << 16);
  ASSERT_TRUE(eager.has_value());
  MultiTagDfaRunner runner(StreamFormat::kCompactMarkup, &alphabet, nullptr,
                           &*eager, nullptr, nullptr);

  std::vector<std::unique_ptr<Session>> sessions;
  for (const auto& plan : plans) {
    sessions.push_back(std::make_unique<Session>(plan));
  }

  for (const std::string& doc : MarkupDocuments(alphabet, 30, 43)) {
    for (size_t chunk : {size_t{1}, size_t{3}, size_t{16}}) {
      runner.Reset();
      bool ok = true;
      for (size_t i = 0; i < doc.size() && ok; i += chunk) {
        ok = runner.Feed(std::string_view(doc).substr(i, chunk));
      }
      if (ok) ok = runner.Finish();
      ASSERT_TRUE(ok) << doc;
      for (size_t q = 0; q < plans.size(); ++q) {
        sessions[q]->Reset();
        bool session_ok = true;
        for (size_t i = 0; i < doc.size() && session_ok; i += chunk) {
          session_ok =
              sessions[q]->Feed(std::string_view(doc).substr(i, chunk));
        }
        ASSERT_TRUE(session_ok && sessions[q]->Finish());
        EXPECT_EQ(runner.query_matches()[q], sessions[q]->matches())
            << "query " << q << " chunk " << chunk << " doc " << doc;
      }
    }
  }
}

TEST(MultiTagDfaRunner, RunValidatedParityOnFaultedInputs) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plans = RegisterlessPlans(alphabet);
  ASSERT_GE(plans.size(), 4u);
  auto eager = BuildTagDfaProduct(Components(plans), 1 << 16);
  ASSERT_TRUE(eager.has_value());
  ByteTagDfaRunner fused(eager->dfa, alphabet);
  LazyTagDfaProduct lazy(Components(plans), 1 << 16);
  MultiTagDfaRunner eager_runner(StreamFormat::kCompactMarkup, &alphabet,
                                 nullptr, &*eager, &fused, nullptr);
  MultiTagDfaRunner lazy_runner(StreamFormat::kCompactMarkup, &alphabet,
                                nullptr, nullptr, nullptr, &lazy);

  FaultInjector injector(59);
  std::vector<std::string> documents = MarkupDocuments(alphabet, 30, 59);
  std::vector<std::string> faulted;
  for (const std::string& doc : documents) {
    for (int kind = 0; kind < kNumFaultKinds; ++kind) {
      std::string mutated = doc;
      injector.Apply(static_cast<FaultKind>(kind), &mutated);
      faulted.push_back(std::move(mutated));
    }
  }
  documents.insert(documents.end(), faulted.begin(), faulted.end());

  StreamLimits tight;
  tight.max_depth = 5;
  tight.max_events = 40;
  for (const StreamLimits& limits : {StreamLimits{}, tight}) {
    for (const std::string& doc : documents) {
      MultiValidatedRun multi = eager_runner.RunValidated(doc, limits);
      MultiValidatedRun via_lazy = lazy_runner.RunValidated(doc, limits);
      ASSERT_EQ(multi.matches.size(), plans.size());
      EXPECT_EQ(multi.error, via_lazy.error) << doc;
      EXPECT_EQ(multi.matches, via_lazy.matches) << doc;
      for (size_t q = 0; q < plans.size(); ++q) {
        ValidatedRun single = plans[q]->fused()->RunValidated(doc, limits);
        EXPECT_EQ(multi.error, single.error) << "query " << q << ": " << doc;
        EXPECT_EQ(multi.matches[q], single.matches)
            << "query " << q << ": " << doc;
        EXPECT_EQ(multi.nodes, single.nodes) << doc;
        EXPECT_EQ(multi.events, single.events) << doc;
        EXPECT_EQ(multi.max_depth, single.max_depth) << doc;
      }
    }
  }
}

// Satellite audit: a stream that demotes to wide mode MID-chunk must
// report the same first StreamError (code + offset) as a run that was
// wide from its very first event, and as the independent per-query
// sessions — demotion may never move or change the error.
TEST(MultiTagDfaRunner, WideDemotionMidChunkKeepsFirstErrorParity) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plans = RegisterlessPlans(alphabet);
  ASSERT_GE(plans.size(), 4u);
  // Cap 2: the stream runs dense for a couple of states, then demotes
  // mid-document. Cap 1: the very first transition overflows, so the
  // stream is effectively wide from scratch.
  LazyTagDfaProduct lazy_mid(Components(plans), 2);
  LazyTagDfaProduct lazy_scratch(Components(plans), 1);
  MultiTagDfaRunner mid(StreamFormat::kCompactMarkup, &alphabet, nullptr,
                        nullptr, nullptr, &lazy_mid);
  MultiTagDfaRunner scratch(StreamFormat::kCompactMarkup, &alphabet, nullptr,
                            nullptr, nullptr, &lazy_scratch);

  std::vector<std::unique_ptr<Session>> sessions;
  for (const auto& plan : plans) {
    sessions.push_back(std::make_unique<Session>(plan));
  }

  auto drive = [](auto* target, const std::string& doc, size_t chunk) {
    target->Reset();
    bool ok = true;
    for (size_t i = 0; i < doc.size() && ok; i += chunk) {
      ok = target->Feed(std::string_view(doc).substr(i, chunk));
    }
    if (ok) ok = target->Finish();
    return ok;
  };

  FaultInjector injector(73);
  bool saw_mid_demotion = false;
  for (const std::string& doc : MarkupDocuments(alphabet, 30, 73)) {
    for (int kind = 0; kind < kNumFaultKinds; ++kind) {
      std::string mutated = doc;
      injector.Apply(static_cast<FaultKind>(kind), &mutated);
      for (size_t chunk : {size_t{3}, size_t{16}}) {
        bool mid_ok = drive(&mid, mutated, chunk);
        bool scratch_ok = drive(&scratch, mutated, chunk);
        EXPECT_EQ(mid_ok, scratch_ok) << mutated;
        EXPECT_EQ(mid.stream_error().code, scratch.stream_error().code)
            << mutated;
        EXPECT_EQ(mid.stream_error().offset, scratch.stream_error().offset)
            << mutated;
        EXPECT_EQ(mid.query_matches(), scratch.query_matches()) << mutated;
        saw_mid_demotion |=
            mid.active_tier() == MultiTier::kIndependent;

        // And both agree with the per-query reference sessions.
        bool session_ok = drive(sessions.front().get(), mutated, chunk);
        EXPECT_EQ(mid_ok, session_ok) << mutated;
        EXPECT_EQ(mid.stream_error().code,
                  sessions.front()->stream_error().code)
            << mutated;
        EXPECT_EQ(mid.stream_error().offset,
                  sessions.front()->stream_error().offset)
            << mutated;
      }
    }
  }
  EXPECT_TRUE(saw_mid_demotion);
  EXPECT_TRUE(lazy_mid.overflowed());
}

// Mixed batch (registerless product + fused DRAs) through the validated
// whole-document entry point: same first error, same counters, and
// per-member counts equal to each member's own fused validated run.
TEST(MultiTagDfaRunner, MixedBatchRunValidatedParity) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto product_plans = RegisterlessPlans(alphabet);
  ASSERT_GE(product_plans.size(), 2u);
  product_plans.resize(2);
  std::vector<std::shared_ptr<const QueryPlan>> dra_plans;
  for (const char* xpath : {"/a/b", "/b/*//c"}) {
    auto plan = CompileXPath(xpath, alphabet);
    ASSERT_EQ(plan->kind(), EvaluatorKind::kStackless) << xpath;
    ASSERT_NE(plan->fused_dra(), nullptr) << xpath;
    dra_plans.push_back(std::move(plan));
  }
  auto eager = BuildTagDfaProduct(Components(product_plans), 1 << 16);
  ASSERT_TRUE(eager.has_value());
  std::vector<const ByteDraRunner*> dras;
  for (const auto& plan : dra_plans) dras.push_back(plan->fused_dra());

  MultiTagDfaRunner runner(StreamFormat::kCompactMarkup, &alphabet, nullptr,
                           &*eager, nullptr, nullptr, dras);
  EXPECT_EQ(runner.tier(), MultiTier::kMixed);
  ASSERT_TRUE(runner.one_scan_eligible());

  FaultInjector injector(79);
  std::vector<std::string> documents = MarkupDocuments(alphabet, 30, 79);
  std::vector<std::string> faulted;
  for (const std::string& doc : documents) {
    for (int kind = 0; kind < kNumFaultKinds; ++kind) {
      std::string mutated = doc;
      injector.Apply(static_cast<FaultKind>(kind), &mutated);
      faulted.push_back(std::move(mutated));
    }
  }
  documents.insert(documents.end(), faulted.begin(), faulted.end());

  StreamLimits tight;
  tight.max_depth = 5;
  tight.max_events = 40;
  const size_t base = product_plans.size();
  for (const StreamLimits& limits : {StreamLimits{}, tight}) {
    for (const std::string& doc : documents) {
      MultiValidatedRun multi = runner.RunValidated(doc, limits);
      ASSERT_EQ(multi.matches.size(), product_plans.size() + dras.size());
      for (size_t q = 0; q < product_plans.size(); ++q) {
        ValidatedRun single =
            product_plans[q]->fused()->RunValidated(doc, limits);
        EXPECT_EQ(multi.error, single.error) << "member " << q << ": " << doc;
        EXPECT_EQ(multi.matches[q], single.matches)
            << "member " << q << ": " << doc;
      }
      for (size_t j = 0; j < dras.size(); ++j) {
        ValidatedRun single = dras[j]->RunValidated(doc, limits);
        EXPECT_EQ(multi.error, single.error)
            << "DRA member " << j << ": " << doc;
        EXPECT_EQ(multi.matches[base + j], single.matches)
            << "DRA member " << j << ": " << doc;
        EXPECT_EQ(multi.nodes, single.nodes) << doc;
        EXPECT_EQ(multi.events, single.events) << doc;
        EXPECT_EQ(multi.max_depth, single.max_depth) << doc;
      }
      if (multi.ok()) {
        std::vector<int64_t> one_scan = runner.CountSelections(doc);
        EXPECT_EQ(one_scan, multi.matches) << doc;
      }
    }
  }
}

TEST(MultiTagDfaRunner, WideBatchesBeyond64Queries) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto base = RegisterlessPlans(alphabet);
  ASSERT_GE(base.size(), 4u);
  // 70 queries cycling the base set: duplicated components stay in
  // lockstep, so the product stays small while the masks go wide.
  std::vector<std::shared_ptr<const QueryPlan>> plans;
  for (int i = 0; i < 70; ++i) plans.push_back(base[i % base.size()]);
  auto product = BuildTagDfaProduct(Components(plans), 1 << 16);
  ASSERT_TRUE(product.has_value());
  EXPECT_EQ(product->arity, 70);
  EXPECT_FALSE(product->narrow);

  MultiTagDfaRunner runner(StreamFormat::kCompactMarkup, &alphabet, nullptr,
                           &*product, nullptr, nullptr);
  for (const std::string& doc : MarkupDocuments(alphabet, 10, 61)) {
    std::vector<int64_t> counts = runner.CountSelections(doc);
    ASSERT_EQ(counts.size(), 70u);
    for (size_t q = 0; q < counts.size(); ++q) {
      EXPECT_EQ(counts[q],
                plans[q]->fused()->CountSelections(doc))
          << "query " << q << ": " << doc;
    }
  }
}

TEST(MultiTagDfaRunner, ConcurrentStreamsShareOneLazyProduct) {
  constexpr int kThreads = 8;
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plans = RegisterlessPlans(alphabet);
  ASSERT_GE(plans.size(), 4u);
  LazyTagDfaProduct lazy(Components(plans), 1 << 16);
  std::vector<std::string> documents = MarkupDocuments(alphabet, 40, 67);

  // Per-query reference from the independent fused runners.
  std::vector<std::vector<int64_t>> expected;
  for (const std::string& doc : documents) {
    std::vector<int64_t> counts;
    for (const auto& plan : plans) {
      counts.push_back(plan->fused()->CountSelections(doc));
    }
    expected.push_back(std::move(counts));
  }

  // Every thread streams the whole corpus, racing to materialize product
  // states; each must still see exact per-query counts.
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      MultiTagDfaRunner runner(StreamFormat::kCompactMarkup, &alphabet,
                               nullptr, nullptr, nullptr, &lazy);
      size_t chunk = static_cast<size_t>(t) + 1;
      for (size_t d = 0; d < documents.size(); ++d) {
        const std::string& doc = documents[d];
        runner.Reset();
        bool ok = true;
        for (size_t i = 0; i < doc.size() && ok; i += chunk) {
          ok = runner.Feed(std::string_view(doc).substr(i, chunk));
        }
        if (!(ok && runner.Finish()) ||
            runner.query_matches() != expected[d]) {
          ++mismatches[static_cast<size_t>(t)];
        }
        if (runner.CountSelections(doc) != expected[d]) {
          ++mismatches[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0) << "thread " << t;
  }
  EXPECT_FALSE(lazy.overflowed());
}

}  // namespace
}  // namespace sst
