// Parameterized algebraic laws of the hedge-automaton substrate over
// random automata.

#include <gtest/gtest.h>

#include "automata/random_dfa.h"
#include "base/rng.h"
#include "test_util.h"
#include "treeauto/hedge_automaton.h"
#include "trees/generators.h"

namespace sst {
namespace {

// Random hedge automaton: a handful of states whose horizontal languages
// are random small DFAs over the state alphabet.
HedgeAutomaton RandomHedge(uint64_t seed, int num_states, int num_symbols) {
  Rng rng(seed * 7919 + 1);
  HedgeAutomaton automaton = HedgeAutomaton::Create(num_states, num_symbols);
  for (int q = 0; q < num_states; ++q) {
    automaton.accepting[q] = rng.NextBool(0.5);
    for (Symbol a = 0; a < num_symbols; ++a) {
      // Bias towards nonempty horizontal languages.
      automaton.Horizontal(a, q) =
          RandomDfa(2 + static_cast<int>(rng.NextBelow(2)), num_states, 0.5,
                    &rng);
    }
  }
  return automaton;
}

class HedgeLaws : public ::testing::TestWithParam<int> {
 protected:
  HedgeAutomaton A() { return RandomHedge(GetParam() * 2 + 0, 2, 2); }
  HedgeAutomaton B() { return RandomHedge(GetParam() * 2 + 1, 2, 2); }
};

TEST_P(HedgeLaws, ProductsMatchMembershipSemantics) {
  HedgeAutomaton a = A();
  HedgeAutomaton b = B();
  HedgeAutomaton both = HedgeIntersection(a, b);
  HedgeAutomaton either = HedgeUnion(a, b);
  Rng rng(GetParam() * 13 + 5);
  for (const Tree& tree : testing::SampleTrees(25, 2, &rng)) {
    bool in_a = HedgeAccepts(a, tree);
    bool in_b = HedgeAccepts(b, tree);
    ASSERT_EQ(HedgeAccepts(both, tree), in_a && in_b);
    ASSERT_EQ(HedgeAccepts(either, tree), in_a || in_b);
  }
}

TEST_P(HedgeLaws, DeterminizationPreservesMembership) {
  HedgeAutomaton a = A();
  std::optional<HedgeAutomaton> det = HedgeDeterminize(a, 512);
  if (!det.has_value()) GTEST_SKIP() << "budget exceeded";
  EXPECT_TRUE(HedgeIsDeterministic(*det));
  Rng rng(GetParam() * 17 + 3);
  for (const Tree& tree : testing::SampleTrees(25, 2, &rng)) {
    ASSERT_EQ(HedgeAccepts(*det, tree), HedgeAccepts(a, tree));
  }
}

TEST_P(HedgeLaws, ComplementIsExactOnSamples) {
  std::optional<HedgeAutomaton> det = HedgeDeterminize(A(), 512);
  if (!det.has_value()) GTEST_SKIP() << "budget exceeded";
  HedgeAutomaton complement = HedgeComplement(*det);
  Rng rng(GetParam() * 19 + 11);
  for (const Tree& tree : testing::SampleTrees(25, 2, &rng)) {
    ASSERT_NE(HedgeAccepts(complement, tree), HedgeAccepts(*det, tree));
  }
}

TEST_P(HedgeLaws, EquivalenceIsReflexiveAndDetectsEmptySymmetricDifference) {
  HedgeAutomaton a = A();
  std::optional<bool> self = HedgeEquivalent(a, a, 512);
  if (!self.has_value()) GTEST_SKIP() << "budget exceeded";
  EXPECT_TRUE(*self);
  // a ∪ a is equivalent to a.
  std::optional<bool> idempotent = HedgeEquivalent(HedgeUnion(a, a), a, 512);
  if (idempotent.has_value()) {
    EXPECT_TRUE(*idempotent);
  }
}

TEST_P(HedgeLaws, EmptinessAgreesWithEnumeration) {
  HedgeAutomaton a = A();
  bool empty = HedgeIsEmpty(a);
  bool found = false;
  for (const Tree& tree : EnumerateTrees(4, 2)) {
    found = found || HedgeAccepts(a, tree);
  }
  if (found) {
    EXPECT_FALSE(empty);
  }
  // The converse direction (empty on small trees but inhabited on larger
  // ones) is possible, so only the one-sided check is sound here; the
  // exact fixpoint is validated by construction in hedge_test.cc.
}

INSTANTIATE_TEST_SUITE_P(Seeds, HedgeLaws, ::testing::Range(0, 20));

}  // namespace
}  // namespace sst
