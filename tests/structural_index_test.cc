// Parity suite for the structural-index execution paths: every fused
// tier that now scans the SIMD stage-1 index instead of touching each
// byte must stay byte-identical — selection counts, final states, and
// the first StreamError (code + offset) — to its per-byte reference.
// The matrix is 30 random trees x {markup, xml-lite, term} x chunk
// splits {1, 3, 16, 64k}, with heavy whitespace padding (runs crossing
// the 64-byte block size), all seven fault-injection mutators, and the
// mid-run fused->generic demotion the recovery path forces.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "dra/byte_dra_runner.h"
#include "dra/byte_runner.h"
#include "dra/machine.h"
#include "dra/multi_runner.h"
#include "dra/parallel_runner.h"
#include "dra/streaming.h"
#include "dra/tag_dfa.h"
#include "engine/query_plan.h"
#include "eval/registerless_query.h"
#include "query/rpq.h"
#include "test_util.h"
#include "testing/fault_injection.h"
#include "trees/encoding.h"

namespace sst {
namespace {

using Format = StreamingSelector::Format;

constexpr size_t kChunkings[] = {1, 3, 16, 64 * 1024};

// Whitespace-pads a document: random runs of the six ASCII whitespace
// bytes between tokens, frequently longer than the 64-byte SIMD block so
// the gap arithmetic and block-boundary handling of the index both fire.
std::string PadWs(Rng* rng, const std::string& doc) {
  static constexpr char kWs[] = {' ', '\t', '\n', '\v', '\f', '\r'};
  std::string out;
  out.reserve(doc.size() * 8);
  auto emit_run = [&] {
    if (!rng->NextBool(0.6)) return;
    size_t run = rng->NextBool(0.3) ? 65 + rng->NextBelow(100)
                                    : 1 + rng->NextBelow(12);
    for (size_t i = 0; i < run; ++i) out.push_back(kWs[rng->NextBelow(6)]);
  };
  emit_run();
  for (char c : doc) {
    out.push_back(c);
    emit_run();
  }
  return out;
}

// All document variants one base document expands to: the original, a
// padded copy, each of the seven fault kinds applied to the original,
// and each applied to the padded copy (faults inside whitespace runs are
// the interesting regime for the index).
std::vector<std::string> Variants(const std::string& doc, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out = {doc, PadWs(&rng, doc)};
  for (int kind = 0; kind < kNumFaultKinds; ++kind) {
    for (size_t base : {size_t{0}, size_t{1}}) {
      std::string mutated = out[base];
      FaultInjector injector(seed * 31 + static_cast<uint64_t>(kind));
      injector.Apply(static_cast<FaultKind>(kind), &mutated);
      out.push_back(std::move(mutated));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registerless byte-table runner: indexed vs per-byte oracles. These are
// pure table walks, so parity must hold on ANY byte soup — clean, padded,
// or mutated — not just well-formed documents.

TEST(StructuralIndex, RegisterlessCountsAndFinalStatesMatchPerByte) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(2207);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);
  for (const char* pattern : {".*", "a.*b", ".*ab", "ab"}) {
    Dfa dfa = CompileRegex(pattern, alphabet);
    TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
    ByteTagDfaRunner runner(evaluator, alphabet);
    // The closure must be derived as trivial for these tables — if this
    // fails the suite below would silently test the fallback loop only.
    ASSERT_TRUE(runner.text_run_exact()) << pattern;
    ASSERT_TRUE(runner.text_run_trivial()) << pattern;
    for (size_t t = 0; t < trees.size(); ++t) {
      std::string doc = ToCompactMarkup(alphabet, Encode(trees[t]));
      for (const std::string& bytes : Variants(doc, t * 7919 + 11)) {
        EXPECT_EQ(runner.CountSelections(bytes),
                  runner.CountSelectionsPerByte(bytes))
            << pattern << " tree=" << t;
        EXPECT_EQ(runner.FinalState(bytes), runner.FinalStatePerByte(bytes))
            << pattern << " tree=" << t;
      }
    }
  }
}

// RunValidated drives the StructuralIterator; its parity oracle is the
// per-byte generic-tier selector with the fused fast path hidden.
class OpaqueForwarder : public StreamMachine {
 public:
  explicit OpaqueForwarder(StreamMachine* inner) : inner_(inner) {}
  void Reset() override { inner_->Reset(); }
  void OnOpen(Symbol s) override { inner_->OnOpen(s); }
  void OnClose(Symbol s) override { inner_->OnClose(s); }
  bool InAcceptingState() const override { return inner_->InAcceptingState(); }

 private:
  StreamMachine* inner_;
};

TEST(StructuralIndex, ValidatedRunsReportTheSameFirstErrorAsTheSelector) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator, alphabet);
  Rng rng(2209);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);
  int failed_runs = 0;
  for (size_t t = 0; t < trees.size(); ++t) {
    std::string doc = ToCompactMarkup(alphabet, Encode(trees[t]));
    for (const std::string& bytes : Variants(doc, t * 104729 + 3)) {
      ValidatedRun run = runner.RunValidated(bytes);

      TagDfaMachine inner(&evaluator);
      OpaqueForwarder generic(&inner);
      StreamingSelector selector(&generic, Format::kCompactMarkup, &alphabet);
      bool fed = selector.Feed(bytes);
      if (fed) selector.Finish();

      EXPECT_EQ(run.error.code, selector.stream_error().code) << bytes;
      EXPECT_EQ(run.error.offset, selector.stream_error().offset) << bytes;
      EXPECT_EQ(run.matches, selector.matches()) << bytes;
      EXPECT_EQ(run.nodes, selector.nodes()) << bytes;
      if (!run.ok()) ++failed_runs;
    }
  }
  // The mutated corpus must actually produce errors, not just clean runs.
  EXPECT_GT(failed_runs, 100);
}

// ---------------------------------------------------------------------------
// Stackless fused rung (ByteDraRunner): indexed vs per-byte.

TEST(StructuralIndex, StacklessDraCountsMatchPerByte) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::shared_ptr<const QueryPlan>> plans;
  for (const char* xpath : {"/a/b", "/b/*//c", "/a/b//c", "/c/a"}) {
    auto plan = QueryPlan::Compile(Rpq::FromXPath(xpath, alphabet), {});
    if (plan->kind() == EvaluatorKind::kStackless &&
        plan->fused_dra() != nullptr) {
      plans.push_back(std::move(plan));
    }
  }
  ASSERT_GE(plans.size(), 2u);
  Rng rng(2211);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);
  for (const auto& plan : plans) {
    const ByteDraRunner* runner = plan->fused_dra();
    ASSERT_TRUE(runner->text_run_trivial());
    for (size_t t = 0; t < trees.size(); ++t) {
      std::string doc = ToCompactMarkup(alphabet, Encode(trees[t]));
      for (const std::string& bytes : Variants(doc, t * 6151 + 29)) {
        EXPECT_EQ(runner->CountSelections(bytes),
                  runner->CountSelectionsPerByte(bytes))
            << "tree=" << t;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-query tiers: every rung's one-scan counts vs N independent
// per-byte runners over the same bytes.

TEST(StructuralIndex, MultiQueryCountsMatchIndependentPerByteRunners) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::shared_ptr<const QueryPlan>> plans;
  for (const char* xpath : {"/a//b", "/b//c", "/c//a", "/a", "/b"}) {
    auto plan = QueryPlan::Compile(Rpq::FromXPath(xpath, alphabet), {});
    if (plan->kind() == EvaluatorKind::kRegisterless &&
        plan->tag_dfa() != nullptr && plan->fused() != nullptr) {
      plans.push_back(std::move(plan));
    }
  }
  ASSERT_GE(plans.size(), 3u);
  std::vector<const TagDfa*> components;
  for (const auto& plan : plans) components.push_back(plan->tag_dfa());

  auto eager = BuildTagDfaProduct(components, /*state_cap=*/4096);
  ASSERT_TRUE(eager.has_value());
  ByteTagDfaRunner eager_fused(eager->dfa, alphabet);
  MultiTagDfaRunner fused_runner(StreamFormat::kCompactMarkup, &alphabet,
                                 nullptr, &*eager, &eager_fused, nullptr);
  ASSERT_TRUE(fused_runner.one_scan_eligible());

  LazyTagDfaProduct lazy(components, /*state_cap=*/4096);
  MultiTagDfaRunner lazy_runner(StreamFormat::kCompactMarkup, &alphabet,
                                nullptr, nullptr, nullptr, &lazy);

  Rng rng(2213);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);
  for (size_t t = 0; t < trees.size(); ++t) {
    std::string doc = ToCompactMarkup(alphabet, Encode(trees[t]));
    for (const std::string& bytes : Variants(doc, t * 1543 + 41)) {
      std::vector<int64_t> expected;
      for (const auto& plan : plans) {
        expected.push_back(plan->fused()->CountSelectionsPerByte(bytes));
      }
      EXPECT_EQ(fused_runner.CountSelections(bytes), expected)
          << "tree=" << t;
      EXPECT_EQ(lazy_runner.CountSelections(bytes), expected) << "tree=" << t;
    }
  }
}

TEST(StructuralIndex, MixedBatchCountsMatchPerByteReferences) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::shared_ptr<const QueryPlan>> reg_plans;
  for (const char* xpath : {"/a//b", "/b//c"}) {
    auto plan = QueryPlan::Compile(Rpq::FromXPath(xpath, alphabet), {});
    if (plan->kind() == EvaluatorKind::kRegisterless &&
        plan->fused() != nullptr) {
      reg_plans.push_back(std::move(plan));
    }
  }
  std::vector<std::shared_ptr<const QueryPlan>> dra_plans;
  for (const char* xpath : {"/a/b", "/a/b//c", "/c/a"}) {
    auto plan = QueryPlan::Compile(Rpq::FromXPath(xpath, alphabet), {});
    if (plan->kind() == EvaluatorKind::kStackless &&
        plan->fused_dra() != nullptr) {
      dra_plans.push_back(std::move(plan));
    }
  }
  if (reg_plans.size() < 2 || dra_plans.empty()) {
    GTEST_SKIP() << "query shapes reclassified; mixed batch unavailable";
  }
  std::vector<const TagDfa*> components;
  for (const auto& plan : reg_plans) components.push_back(plan->tag_dfa());
  auto eager = BuildTagDfaProduct(components, /*state_cap=*/4096);
  ASSERT_TRUE(eager.has_value());
  ByteTagDfaRunner eager_fused(eager->dfa, alphabet);
  std::vector<const ByteDraRunner*> dras;
  for (const auto& plan : dra_plans) dras.push_back(plan->fused_dra());
  MultiTagDfaRunner mixed(StreamFormat::kCompactMarkup, &alphabet, nullptr,
                          &*eager, &eager_fused, nullptr, dras);
  ASSERT_EQ(mixed.tier(), MultiTier::kMixed);

  Rng rng(2217);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);
  for (size_t t = 0; t < trees.size(); ++t) {
    std::string doc = ToCompactMarkup(alphabet, Encode(trees[t]));
    for (const std::string& bytes : Variants(doc, t * 2689 + 13)) {
      std::vector<int64_t> expected;
      for (const auto& plan : reg_plans) {
        expected.push_back(plan->fused()->CountSelectionsPerByte(bytes));
      }
      for (const ByteDraRunner* dra : dras) {
        expected.push_back(dra->CountSelectionsPerByte(bytes));
      }
      EXPECT_EQ(mixed.CountSelections(bytes), expected) << "tree=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel speculative runner: the index-extracted position walk (and its
// iota fallback) against the per-byte sequential oracles, with tiny dedup
// intervals so merges land inside whitespace gaps.

TEST(StructuralIndex, ParallelRunnerMatchesPerByteOracles) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator, alphabet);
  Rng rng(2219);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);
  for (int dedup_interval : {7, 64, 256}) {
    ParallelTagDfaRunner parallel(&runner, /*pool=*/nullptr, dedup_interval);
    for (size_t t = 0; t < trees.size(); ++t) {
      std::string doc = ToCompactMarkup(alphabet, Encode(trees[t]));
      for (const std::string& bytes : Variants(doc, t * 389 + 7)) {
        for (int chunks : {1, 3, 8}) {
          ParallelTagDfaRunner::Result result = parallel.Run(bytes, chunks);
          EXPECT_EQ(result.selections, runner.CountSelectionsPerByte(bytes))
              << "tree=" << t << " chunks=" << chunks;
          EXPECT_EQ(result.final_state, runner.FinalStatePerByte(bytes))
              << "tree=" << t << " chunks=" << chunks;
        }
        ValidatedRun sequential = runner.RunValidated(bytes);
        ValidatedRun parallel_run = parallel.RunValidated(bytes, 3);
        EXPECT_EQ(parallel_run.error.code, sequential.error.code);
        EXPECT_EQ(parallel_run.error.offset, sequential.error.offset);
        EXPECT_EQ(parallel_run.matches, sequential.matches);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Selector-level matrix: fused tier (StructuralIterator scanners, byte
// tables, demotion ladder) vs the generic tier pinned by OpaqueForwarder,
// 30 trees x 3 formats x 4 chunkings x all variants, under the recovery
// policy that forces mid-run fused->generic demotion.

struct Observed {
  bool fed = false;
  bool finished = false;
  bool failed = false;
  int64_t nodes = 0;
  int64_t matches = 0;
  int64_t events = 0;
  int64_t max_depth = 0;
  int64_t errors_recovered = 0;
  int64_t error_offset = -1;
  StreamErrorCode error_code = StreamErrorCode::kNone;
  int64_t first_error_offset = -1;

  friend bool operator==(const Observed&, const Observed&) = default;
};

Observed RunChunked(StreamMachine* machine, Format format, Alphabet* alphabet,
                    const std::string& text, size_t chunk) {
  machine->Reset();
  StreamingSelector selector(machine, format, alphabet);
  selector.set_recovery_policy(RecoveryPolicy::kSkipMalformedSubtree);
  Observed o;
  o.fed = true;
  for (size_t i = 0; i < text.size() && o.fed; i += chunk) {
    o.fed = selector.Feed(std::string_view(text).substr(i, chunk));
  }
  o.finished = o.fed && selector.Finish();
  o.failed = selector.failed();
  o.nodes = selector.nodes();
  o.matches = selector.matches();
  StreamStats stats = selector.stats();
  o.events = stats.events;
  o.max_depth = stats.max_depth;
  o.errors_recovered = stats.errors_recovered;
  o.error_offset = stats.error_offset;
  o.error_code = selector.stream_error().code;
  o.first_error_offset = selector.stream_error().offset;
  return o;
}

TEST(StructuralIndex, SelectorParityAcrossFormatsChunkingsAndFaults) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);

  struct FormatCase {
    Format format;
    std::string (*encode)(const Alphabet&, const EventStream&);
  };
  const FormatCase kFormats[] = {
      {Format::kCompactMarkup, &ToCompactMarkup},
      {Format::kXmlLite, &ToXmlLite},
      {Format::kCompactTerm, &ToCompactTerm},
  };

  Rng rng(2221);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);
  int demoted_runs = 0;
  for (size_t t = 0; t < trees.size(); ++t) {
    EventStream events = Encode(trees[t]);
    for (const FormatCase& fc : kFormats) {
      std::string doc = fc.encode(alphabet, events);
      for (const std::string& text : Variants(doc, t * 433 + 17)) {
        for (size_t chunk : kChunkings) {
          TagDfaMachine fused_machine(&evaluator);
          Observed fused = RunChunked(&fused_machine, fc.format, &alphabet,
                                      text, chunk);
          TagDfaMachine inner(&evaluator);
          OpaqueForwarder generic_machine(&inner);
          Observed generic = RunChunked(&generic_machine, fc.format,
                                        &alphabet, text, chunk);
          EXPECT_EQ(fused, generic)
              << "tree=" << t << " chunk=" << chunk << "\ntext: " << text;
          if (fused.errors_recovered > 0 &&
              fc.format == Format::kCompactMarkup) {
            ++demoted_runs;
          }
        }
      }
    }
  }
  // The corpus must exercise mid-run demotion on the fused tier, not just
  // clean scans that never leave it.
  EXPECT_GT(demoted_runs, 100);
}

}  // namespace
}  // namespace sst
