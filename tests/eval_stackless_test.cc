#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "classes/syntactic_classes.h"
#include "dra/byte_dra_runner.h"
#include "dra/dra.h"
#include "dra/machine.h"
#include "eval/stack_evaluator.h"
#include "eval/stackless_query.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {


TEST(Lemma38, PaperExamplesAbAndAnyAAnyB) {
  // ab and Γ*aΓ*b are HAR but not almost-reversible (Example 2.12): the
  // depth-register evaluator must realize them exactly.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(3);
  for (const char* pattern : {"ab", ".*a.*b", "a.*b", "abc", "a(b|c)a"}) {
    Dfa dfa = CompileRegex(pattern, alphabet);
    ASSERT_TRUE(IsHar(dfa)) << pattern;
    StacklessQueryEvaluator machine(dfa, /*blind=*/false);
    for (const Tree& tree : testing::SampleTrees(150, 3, &rng)) {
      ASSERT_EQ(RunQueryOnTree(&machine, tree), SelectNodes(dfa, tree))
          << pattern;
      EXPECT_FALSE(machine.dead());
    }
  }
}

TEST(Lemma38, DeepChainsOfRepeatedSccEntries) {
  // Example 2.6's language shape: chains of a's force repeated re-entries
  // into the same SCC; registers must be recycled correctly.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  StacklessQueryEvaluator machine(dfa, /*blind=*/false);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    Tree tree = RandomTree(200, 3, 0.9, &rng);  // deep trees
    ASSERT_EQ(RunQueryOnTree(&machine, tree), SelectNodes(dfa, tree));
  }
}

TEST(Lemma38, RandomHarLanguages) {
  Rng rng(211);
  std::vector<Dfa> languages = testing::SampleLanguages(
      30, 2, [](const Dfa& d) { return IsHar(d); }, &rng);
  ASSERT_GE(languages.size(), 10u);
  for (const Dfa& dfa : languages) {
    StacklessQueryEvaluator machine(dfa, /*blind=*/false);
    for (const Tree& tree : testing::SampleTrees(40, 2, &rng)) {
      ASSERT_EQ(RunQueryOnTree(&machine, tree), SelectNodes(dfa, tree));
    }
  }
}

TEST(Lemma38, RegisterCountBoundedBySccChain) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  StacklessQueryEvaluator machine(dfa, /*blind=*/false);
  // Γ*aΓ*b has a 3-chain of SCCs, so at most 2 registers.
  EXPECT_LE(machine.num_registers(), 2);
  Rng rng(7);
  size_t max_live = 0;
  machine.Reset();
  Tree tree = RandomTree(500, 3, 0.8, &rng);
  for (const TagEvent& event : Encode(tree)) {
    if (event.open) {
      machine.OnOpen(event.symbol);
    } else {
      machine.OnClose(event.symbol);
    }
    max_live = std::max(max_live, machine.live_registers());
  }
  EXPECT_LE(max_live, static_cast<size_t>(machine.num_registers()));
}

TEST(Lemma38, FailsForSomeTreeWhenNotHar) {
  // Γ*ab is not HAR (Example 2.7 / Fig 3d): the construction, applied
  // anyway, must err somewhere — Theorem 3.1 says no DRA can realize it.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*ab", alphabet);
  ASSERT_FALSE(IsHar(dfa));
  StacklessQueryEvaluator machine(dfa, /*blind=*/false);
  Rng rng(9);
  bool found_error = false;
  for (const Tree& tree : testing::SampleTrees(500, 3, &rng)) {
    if (RunQueryOnTree(&machine, tree) != SelectNodes(dfa, tree)) {
      found_error = true;
      break;
    }
  }
  EXPECT_TRUE(found_error);
}

TEST(TheoremB2, BlindVariantOnTermEncoding) {
  Rng rng(213);
  std::vector<Dfa> languages = testing::SampleLanguages(
      25, 2, [](const Dfa& d) { return IsBlindHar(d); }, &rng);
  ASSERT_GE(languages.size(), 10u);
  for (const Dfa& dfa : languages) {
    StacklessQueryEvaluator machine(dfa, /*blind=*/true);
    for (const Tree& tree : testing::SampleTrees(40, 2, &rng)) {
      ASSERT_EQ(RunQueryOnTree(&machine, tree, /*term_encoded=*/true),
                SelectNodes(dfa, tree));
    }
  }
}

TEST(TheoremB2, Fig2LanguageFailsBlindly) {
  // Fig 2's language (even number of a's) is reversible, hence markup-
  // registerless, but not blindly HAR: the blind construction must err.
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("(b|ab*a)*", alphabet);
  ASSERT_FALSE(IsBlindHar(dfa));
  StacklessQueryEvaluator machine(dfa, /*blind=*/true);
  Rng rng(11);
  bool found_error = false;
  for (const Tree& tree : testing::SampleTrees(500, 2, &rng)) {
    if (RunQueryOnTree(&machine, tree, /*term_encoded=*/true) !=
        SelectNodes(dfa, tree)) {
      found_error = true;
      break;
    }
  }
  EXPECT_TRUE(found_error);
}

TEST(Materialize, ExplicitDraMatchesInterpreter) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(13);
  for (const char* pattern : {"ab", ".*a.*b", "a.*b"}) {
    Dfa dfa = CompileRegex(pattern, alphabet);
    std::optional<Dra> dra =
        MaterializeStacklessQueryDra(dfa, /*blind=*/false, 50000);
    ASSERT_TRUE(dra.has_value()) << pattern;
    StacklessQueryEvaluator interpreter(dfa, /*blind=*/false);
    DraRunner runner(&*dra);
    for (const Tree& tree : testing::SampleTrees(60, 3, &rng)) {
      EventStream events = Encode(tree);
      ASSERT_EQ(RunQuery(&runner, events), RunQuery(&interpreter, events))
          << pattern;
    }
  }
}

TEST(Materialize, ExplicitDraIsRestricted) {
  // Section 2.2: "all depth-register automata we construct are restricted",
  // backing the conjecture that restricted DRAs capture all regular
  // stackless languages.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  for (const char* pattern : {"ab", ".*a.*b", "a.*b"}) {
    Dfa dfa = CompileRegex(pattern, alphabet);
    std::optional<Dra> dra =
        MaterializeStacklessQueryDra(dfa, /*blind=*/false, 50000);
    ASSERT_TRUE(dra.has_value()) << pattern;
    EXPECT_TRUE(IsRestricted(*dra)) << pattern;
  }
}

TEST(Materialize, QueriesSelectTheSameNodesAsTheOracle) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  std::optional<Dra> dra =
      MaterializeStacklessQueryDra(dfa, /*blind=*/false, 50000);
  ASSERT_TRUE(dra.has_value());
  DraRunner runner(&*dra);
  Rng rng(17);
  for (const Tree& tree : testing::SampleTrees(120, 3, &rng)) {
    ASSERT_EQ(RunQueryOnTree(&runner, tree), SelectNodes(dfa, tree));
  }
}

// Satellite audit: a wide differential sweep over random minimal DFAs.
// For every HAR language sampled, four evaluations of the same query must
// agree node-for-node on every random tree:
//   * the Lemma 3.8 interpreter (StacklessQueryEvaluator),
//   * the materialized explicit DRA (MaterializeStacklessQueryDra),
//   * the pushdown baseline (StackQueryEvaluator),
//   * the ground-truth oracle (SelectNodes),
// plus, byte-level, the fused ByteDraRunner's selection count over the
// compact-markup serialization. Any divergence pins a bug to the layer
// whose answer is the odd one out.
TEST(DifferentialAudit, StacklessLayersAgreeOnRandomMinimalDfas) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Rng rng(2026);
  std::vector<Dfa> languages = testing::SampleLanguages(
      200, 2, [](const Dfa& d) { return IsHar(d); }, &rng,
      /*max_attempts=*/40000);
  ASSERT_GE(languages.size(), 100u);

  int audited = 0;
  int materialized = 0;
  int fused = 0;
  for (const Dfa& dfa : languages) {
    ++audited;
    StacklessQueryEvaluator interpreter(dfa, /*blind=*/false);
    StackQueryEvaluator baseline(&dfa);
    std::optional<Dra> dra =
        MaterializeStacklessQueryDra(dfa, /*blind=*/false, 50000);
    std::optional<DraRunner> runner;
    std::optional<ByteDraRunner> byte_runner;
    if (dra.has_value()) {
      ASSERT_TRUE(IsRestricted(*dra));
      runner.emplace(&*dra);
      ++materialized;
      if (dra->num_registers <= Dra::kMaxRegisters &&
          dra->num_symbols == alphabet.size()) {
        byte_runner.emplace(&*dra, alphabet);
        ++fused;
      }
    }
    for (const Tree& tree : testing::SampleTrees(15, dfa.num_symbols, &rng)) {
      const std::vector<bool> want = SelectNodes(dfa, tree);
      ASSERT_EQ(RunQueryOnTree(&interpreter, tree), want);
      ASSERT_EQ(RunQueryOnTree(&baseline, tree), want);
      if (runner) ASSERT_EQ(RunQueryOnTree(&*runner, tree), want);
      if (byte_runner) {
        int64_t selected = 0;
        for (bool b : want) selected += static_cast<int64_t>(b);
        std::string doc = ToCompactMarkup(alphabet, Encode(tree));
        ASSERT_EQ(byte_runner->CountSelections(doc), selected) << doc;
      }
    }
  }
  // The audit only means something if the deeper layers actually ran.
  EXPECT_GE(audited, 100);
  EXPECT_GT(materialized, 50);
  EXPECT_GT(fused, 50);
}

TEST(Materialize, RespectsStateBudget) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  EXPECT_FALSE(
      MaterializeStacklessQueryDra(dfa, /*blind=*/false, 2).has_value());
}

}  // namespace
}  // namespace sst
