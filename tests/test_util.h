#ifndef SST_TESTS_TEST_UTIL_H_
#define SST_TESTS_TEST_UTIL_H_

#include <functional>
#include <vector>

#include "automata/dfa.h"
#include "automata/minimize.h"
#include "automata/random_dfa.h"
#include "base/rng.h"
#include "classes/syntactic_classes.h"
#include "trees/generators.h"
#include "trees/tree.h"

namespace sst::testing {

// Collects up to `want` minimal DFAs satisfying `predicate`, drawing from a
// mix of generators (uniform, permutation, R-trivial, finite) so the sample
// covers all syntactic classes reasonably often.
inline std::vector<Dfa> SampleLanguages(
    int want, int num_symbols, const std::function<bool(const Dfa&)>& predicate,
    Rng* rng, int max_attempts = 4000) {
  std::vector<Dfa> result;
  for (int attempt = 0; attempt < max_attempts &&
                        static_cast<int>(result.size()) < want;
       ++attempt) {
    Dfa candidate;
    switch (attempt % 4) {
      case 0:
        candidate = RandomDfa(2 + attempt % 7, num_symbols, 0.4, rng);
        break;
      case 1:
        candidate = RandomPermutationDfa(2 + attempt % 5, num_symbols, 0.5,
                                         rng);
        break;
      case 2:
        candidate = RandomRTrivialDfa(3 + attempt % 6, num_symbols, 0.4, rng);
        break;
      default:
        candidate = RandomFiniteLanguageDfa(2 + attempt % 4, num_symbols, 0.5,
                                            rng);
        break;
    }
    Dfa minimal = Minimize(candidate);
    if (minimal.num_states >= 2 && predicate(minimal)) {
      result.push_back(std::move(minimal));
    }
  }
  return result;
}

// A batch of random trees with mixed shapes for cross-validation runs.
inline std::vector<Tree> SampleTrees(int count, int num_symbols, Rng* rng) {
  std::vector<Tree> trees;
  trees.reserve(count);
  for (int i = 0; i < count; ++i) {
    int nodes = 1 + static_cast<int>(rng->NextBelow(40));
    trees.push_back(RandomTree(nodes, num_symbols, rng->NextDouble(), rng));
  }
  return trees;
}

}  // namespace sst::testing

#endif  // SST_TESTS_TEST_UTIL_H_
