// Recovery, resource-guard, and degradation-ladder tests for the
// hardened streaming front-end: RecoveryPolicy semantics per format,
// StreamLimits determinism under any chunk split, fused→generic tier
// demotion, and the sanitized-document equivalence property that pins
// down what kSkipMalformedSubtree means.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "dra/streaming.h"
#include "dra/tag_dfa.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"
#include "test_util.h"
#include "testing/fault_injection.h"
#include "trees/encoding.h"

namespace sst {
namespace {

using Format = StreamingSelector::Format;
using Tier = StreamingSelector::Tier;

// One recovered error flattened into comparable fields.
struct RecoveredView {
  StreamError error;
  int64_t excise_from = -1;
  int64_t resume_offset = -1;
  Symbol closed_label = -1;

  friend bool operator==(const RecoveredView&, const RecoveredView&) = default;
};

// Everything observable about one run, for differential comparison.
struct Observed {
  bool fed = false;
  bool finished = false;
  bool failed = false;
  int64_t nodes = 0;
  int64_t matches = 0;
  int64_t events = 0;
  int64_t max_depth = 0;
  int64_t bytes_fed = 0;
  int64_t errors_recovered = 0;
  int64_t subtrees_skipped = 0;
  int64_t error_offset = -1;
  StreamError stream_error;
  std::vector<RecoveredView> recovered;
  std::vector<std::pair<int64_t, Symbol>> match_log;

  friend bool operator==(const Observed&, const Observed&) = default;
};

Observed RunPieces(StreamMachine* machine, Format format, Alphabet* alphabet,
                   const std::vector<std::string_view>& pieces,
                   RecoveryPolicy policy, const StreamLimits& limits = {}) {
  machine->Reset();
  StreamingSelector selector(machine, format, alphabet);
  selector.set_recovery_policy(policy);
  selector.set_limits(limits);
  Observed o;
  selector.set_match_callback([&o](int64_t node, Symbol s) {
    o.match_log.emplace_back(node, s);
  });
  o.fed = true;
  for (std::string_view piece : pieces) {
    if (!selector.Feed(piece)) {
      o.fed = false;
      break;
    }
  }
  o.finished = o.fed && selector.Finish();
  o.failed = selector.failed();
  o.nodes = selector.nodes();
  o.matches = selector.matches();
  StreamStats stats = selector.stats();
  o.events = stats.events;
  o.max_depth = stats.max_depth;
  o.bytes_fed = stats.bytes_fed;
  o.errors_recovered = stats.errors_recovered;
  o.subtrees_skipped = stats.subtrees_skipped;
  o.error_offset = stats.error_offset;
  o.stream_error = selector.stream_error();
  for (const StreamingSelector::RecoveredError& r :
       selector.recovered_errors()) {
    o.recovered.push_back(
        RecoveredView{r.error, r.excise_from, r.resume_offset, r.closed_label});
  }
  return o;
}

Observed RunWhole(StreamMachine* machine, Format format, Alphabet* alphabet,
                  const std::string& text, RecoveryPolicy policy,
                  const StreamLimits& limits = {}) {
  return RunPieces(machine, format, alphabet, {std::string_view(text)}, policy,
                   limits);
}

// The byte sequence of one closing tag in the given format.
std::string CloseToken(Format format, Symbol label, const Alphabet& alphabet) {
  switch (format) {
    case Format::kCompactMarkup:
      return std::string(
          1, static_cast<char>(std::toupper(
                 static_cast<unsigned char>(alphabet.LabelOf(label)[0]))));
    case Format::kXmlLite:
      return "</" + alphabet.LabelOf(label) + ">";
    case Format::kCompactTerm:
      return "}";
  }
  return {};
}

// Rebuilds the sanitized document a recovered run is equivalent to:
// each recovered error excises [excise_from, resume_offset) and closes
// the truncated element explicitly.
std::string Sanitize(const std::string& doc,
                     const std::vector<RecoveredView>& recovered,
                     Format format, const Alphabet& alphabet) {
  std::string out;
  size_t pos = 0;
  for (const RecoveredView& r : recovered) {
    EXPECT_GE(r.excise_from, static_cast<int64_t>(pos));
    EXPECT_GE(r.resume_offset, r.excise_from);
    EXPECT_GE(r.closed_label, 0);
    out.append(doc, pos, static_cast<size_t>(r.excise_from) - pos);
    out += CloseToken(format, r.closed_label, alphabet);
    pos = static_cast<size_t>(r.resume_offset);
  }
  out.append(doc, pos, std::string::npos);
  return out;
}

std::vector<size_t> UniformCuts(size_t n, size_t chunk) {
  std::vector<size_t> cuts;
  for (size_t i = chunk; i < n; i += chunk) cuts.push_back(i);
  return cuts;
}

// ---------------------------------------------------------------------------
// kSkipMalformedSubtree semantics, format by format.

class SkipRecoveryTest : public ::testing::Test {
 protected:
  SkipRecoveryTest()
      : alphabet_(Alphabet::FromLetters("abc")),
        dfa_(CompileRegex(".*", alphabet_)),
        machine_(&dfa_) {}

  Alphabet alphabet_;
  Dfa dfa_;
  StackQueryEvaluator machine_;
};

TEST_F(SkipRecoveryTest, JunkByteTruncatesTheInnermostElement) {
  // "ab!BA": the '!' damages <b>; recovery truncates <b> at the 'B'.
  Observed o = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, "ab!BA",
                        RecoveryPolicy::kSkipMalformedSubtree);
  EXPECT_TRUE(o.finished) << o.stream_error.Render(&alphabet_);
  EXPECT_FALSE(o.failed);
  EXPECT_EQ(o.nodes, 2);
  EXPECT_EQ(o.events, 4);
  EXPECT_EQ(o.errors_recovered, 1);
  EXPECT_EQ(o.subtrees_skipped, 1);
  EXPECT_EQ(o.stream_error.code, StreamErrorCode::kBadByte);
  EXPECT_EQ(o.stream_error.offset, 2);
  EXPECT_EQ(o.error_offset, 2);
  ASSERT_EQ(o.recovered.size(), 1u);
  EXPECT_EQ(o.recovered[0].excise_from, 2);
  EXPECT_EQ(o.recovered[0].resume_offset, 4);  // just past the resync 'B'
  EXPECT_EQ(o.recovered[0].closed_label, alphabet_.Find("b"));
}

TEST_F(SkipRecoveryTest, SkipDiscardsEverythingUpToTheEnclosingClose) {
  // "a!bB!A": after the error at offset 1, the rest of <a>'s content —
  // including the well-formed <b></b> — is framing-scanned and dropped.
  Observed o = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_,
                        "a!bB!A", RecoveryPolicy::kSkipMalformedSubtree);
  EXPECT_TRUE(o.finished);
  EXPECT_EQ(o.nodes, 1);
  EXPECT_EQ(o.events, 2);
  EXPECT_EQ(o.errors_recovered, 1);  // the second '!' lies inside the skip
  ASSERT_EQ(o.recovered.size(), 1u);
  EXPECT_EQ(o.recovered[0].excise_from, 1);
  EXPECT_EQ(o.recovered[0].resume_offset, 6);
  EXPECT_EQ(o.recovered[0].closed_label, alphabet_.Find("a"));
}

TEST_F(SkipRecoveryTest, MismatchedCloseResynchronizesImmediately) {
  // "abAA": the first 'A' arrives while <b> is open. The mismatching
  // close is itself the resync token: <b> is closed synthetically and
  // the stream continues, so the second 'A' closes <a>.
  Observed o = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, "abAA",
                        RecoveryPolicy::kSkipMalformedSubtree);
  EXPECT_TRUE(o.finished);
  EXPECT_EQ(o.nodes, 2);
  EXPECT_EQ(o.events, 4);
  EXPECT_EQ(o.stream_error.code, StreamErrorCode::kLabelMismatch);
  EXPECT_EQ(o.stream_error.offset, 2);
  EXPECT_EQ(o.stream_error.expected, alphabet_.Find("b"));
  EXPECT_EQ(o.stream_error.got, alphabet_.Find("a"));
  ASSERT_EQ(o.recovered.size(), 1u);
  EXPECT_EQ(o.recovered[0].excise_from, 2);
  EXPECT_EQ(o.recovered[0].resume_offset, 3);
  EXPECT_EQ(o.recovered[0].closed_label, alphabet_.Find("b"));
}

TEST_F(SkipRecoveryTest, CascadingMismatchesRecoverRecursively) {
  // Two independent damaged regions in one document: each recovers on
  // its own and the clean content between them is fully processed.
  Observed o = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_,
                        "ab!Bc!CA", RecoveryPolicy::kSkipMalformedSubtree);
  EXPECT_TRUE(o.finished);
  EXPECT_EQ(o.nodes, 3);
  EXPECT_EQ(o.errors_recovered, 2);
  EXPECT_EQ(o.subtrees_skipped, 2);
  EXPECT_EQ(o.stream_error.offset, 2);  // the first error wins
  ASSERT_EQ(o.recovered.size(), 2u);
  EXPECT_EQ(o.recovered[0].error.offset, 2);
  EXPECT_EQ(o.recovered[1].error.offset, 5);
}

TEST_F(SkipRecoveryTest, ErrorsAtDepthZeroStayFatal) {
  // Nothing encloses the damage, so there is no element to truncate.
  Observed trailing =
      RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, "aAb",
               RecoveryPolicy::kSkipMalformedSubtree);
  EXPECT_FALSE(trailing.fed);
  EXPECT_TRUE(trailing.failed);
  EXPECT_EQ(trailing.stream_error.code, StreamErrorCode::kTrailingContent);
  EXPECT_EQ(trailing.stream_error.offset, 2);

  Observed unbalanced =
      RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, "aAB",
               RecoveryPolicy::kSkipMalformedSubtree);
  EXPECT_TRUE(unbalanced.failed);
  EXPECT_EQ(unbalanced.stream_error.code, StreamErrorCode::kUnbalancedClose);
  EXPECT_EQ(unbalanced.stream_error.offset, 2);

  Observed junk = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_,
                           "?aA", RecoveryPolicy::kSkipMalformedSubtree);
  EXPECT_TRUE(junk.failed);
  EXPECT_EQ(junk.stream_error.code, StreamErrorCode::kBadByte);
  EXPECT_EQ(junk.stream_error.offset, 0);
}

TEST_F(SkipRecoveryTest, EofInsideSkipIsATruncatedDocument) {
  Observed o = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, "ab!",
                        RecoveryPolicy::kSkipMalformedSubtree);
  EXPECT_TRUE(o.fed);
  EXPECT_FALSE(o.finished);
  EXPECT_EQ(o.stream_error.code, StreamErrorCode::kBadByte);  // first error
  ASSERT_EQ(o.recovered.size(), 1u);
  EXPECT_EQ(o.recovered[0].resume_offset, -1);  // skip still open at EOF
}

TEST_F(SkipRecoveryTest, XmlUnknownElementIsSkippedWithItsContent) {
  Alphabet alphabet;
  alphabet.Intern("doc");
  alphabet.Intern("item");
  Dfa dfa = CompileRegex(".*", alphabet);
  StackQueryEvaluator machine(&dfa);
  const std::string text =
      "<doc><junk>text<i></i></junk><item></item></doc>";
  Observed o = RunWhole(&machine, Format::kXmlLite, &alphabet, text,
                        RecoveryPolicy::kSkipMalformedSubtree);
  EXPECT_TRUE(o.finished) << o.stream_error.Render(&alphabet);
  // Everything from <junk> to </doc> is <doc> content after the damage,
  // so recovery truncates <doc> itself: the <item> is not revisited.
  EXPECT_EQ(o.nodes, 1);
  EXPECT_EQ(o.stream_error.code, StreamErrorCode::kUnknownLabel);
  ASSERT_EQ(o.recovered.size(), 1u);
  EXPECT_EQ(o.recovered[0].excise_from, 5);  // the '<' of <junk>
  EXPECT_EQ(o.recovered[0].resume_offset, static_cast<int64_t>(text.size()));
  EXPECT_EQ(o.recovered[0].closed_label, alphabet.Find("doc"));
  EXPECT_EQ(Sanitize(text, o.recovered, Format::kXmlLite, alphabet),
            "<doc></doc>");
}

TEST_F(SkipRecoveryTest, TermUnknownLabelExcisesFromThePendingByte) {
  // "a{x{}b{}}": the unknown label's byte 'x' at offset 2 starts the
  // damage even though the error fires at its '{'.
  Observed o = RunWhole(&machine_, Format::kCompactTerm, &alphabet_,
                        "a{x{}b{}}", RecoveryPolicy::kSkipMalformedSubtree);
  EXPECT_TRUE(o.finished) << o.stream_error.Render(&alphabet_);
  EXPECT_EQ(o.nodes, 1);
  EXPECT_EQ(o.stream_error.code, StreamErrorCode::kUnknownLabel);
  ASSERT_EQ(o.recovered.size(), 1u);
  EXPECT_EQ(o.recovered[0].excise_from, 2);
  EXPECT_EQ(o.recovered[0].resume_offset, 9);
  EXPECT_EQ(Sanitize("a{x{}b{}}", o.recovered, Format::kCompactTerm,
                     alphabet_),
            "a{}");
}

// ---------------------------------------------------------------------------
// Resource guards.

TEST_F(SkipRecoveryTest, DepthLimitFailsFastAtTheOverflowingOpen) {
  StreamLimits limits;
  limits.max_depth = 3;
  Observed o = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_,
                        "ababBABA", RecoveryPolicy::kFailFast, limits);
  EXPECT_TRUE(o.failed);
  EXPECT_EQ(o.stream_error.code, StreamErrorCode::kDepthLimitExceeded);
  EXPECT_EQ(o.stream_error.offset, 3);
  EXPECT_EQ(o.max_depth, 3);

  // At exactly the limit the document passes.
  Observed ok = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_,
                         "abaABA", RecoveryPolicy::kFailFast, limits);
  EXPECT_TRUE(ok.finished);
}

TEST_F(SkipRecoveryTest, DepthLimitIsRecoverableUnderSkip) {
  // The over-limit subtree is skipped like any other malformed region.
  StreamLimits limits;
  limits.max_depth = 3;
  Observed o =
      RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, "ababBABA",
               RecoveryPolicy::kSkipMalformedSubtree, limits);
  EXPECT_TRUE(o.finished) << o.stream_error.Render(&alphabet_);
  EXPECT_EQ(o.nodes, 3);
  EXPECT_EQ(o.max_depth, 3);
  EXPECT_EQ(o.errors_recovered, 1);
  EXPECT_EQ(o.stream_error.code, StreamErrorCode::kDepthLimitExceeded);
}

TEST_F(SkipRecoveryTest, ByteLimitFiresAtTheLimitOffsetUnderAnySplit) {
  StreamLimits limits;
  limits.max_document_bytes = 3;
  const std::string text = "abBA";
  for (size_t chunk = 1; chunk <= text.size(); ++chunk) {
    Observed o = RunPieces(&machine_, Format::kCompactMarkup, &alphabet_,
                           SplitAt(text, UniformCuts(text.size(), chunk)),
                           RecoveryPolicy::kSkipMalformedSubtree, limits);
    EXPECT_TRUE(o.failed) << chunk;
    EXPECT_EQ(o.stream_error.code, StreamErrorCode::kByteLimitExceeded);
    EXPECT_EQ(o.stream_error.offset, 3);
    EXPECT_EQ(o.bytes_fed, 3);   // the guard consumed exactly the prefix
    EXPECT_EQ(o.events, 3);      // a, b, B were processed before the stop
  }
  // A document of exactly the limit passes.
  limits.max_document_bytes = 4;
  Observed ok = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, text,
                         RecoveryPolicy::kFailFast, limits);
  EXPECT_TRUE(ok.finished);
}

TEST_F(SkipRecoveryTest, EventLimitIsAHardStopEvenUnderSkip) {
  StreamLimits limits;
  limits.max_events = 3;
  Observed o = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, "abBA",
                        RecoveryPolicy::kSkipMalformedSubtree, limits);
  EXPECT_TRUE(o.failed);
  EXPECT_EQ(o.stream_error.code, StreamErrorCode::kEventLimitExceeded);
  EXPECT_EQ(o.stream_error.offset, 3);
  EXPECT_EQ(o.events, 3);

  limits.max_events = 4;
  Observed ok = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, "abBA",
                         RecoveryPolicy::kFailFast, limits);
  EXPECT_TRUE(ok.finished);
}

TEST_F(SkipRecoveryTest, RecoveryBudgetTurnsTheNextErrorFatal) {
  StreamLimits limits;
  limits.max_recovered_errors = 1;
  Observed o =
      RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, "ab!Bc!CA",
               RecoveryPolicy::kSkipMalformedSubtree, limits);
  EXPECT_TRUE(o.failed);
  EXPECT_EQ(o.errors_recovered, 1);
  // stream_error() reports the FIRST error of the stream — here the one
  // that was recovered — while failed() records that a later error
  // exhausted the budget.
  EXPECT_EQ(o.stream_error.offset, 2);
  EXPECT_EQ(o.error_offset, 2);
}

// ---------------------------------------------------------------------------
// kAutoClose.

TEST_F(SkipRecoveryTest, AutoCloseSynthesizesTheMissingCloses) {
  Observed o = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, "ab",
                        RecoveryPolicy::kAutoClose);
  EXPECT_TRUE(o.finished);
  EXPECT_FALSE(o.failed);
  EXPECT_EQ(o.nodes, 2);
  EXPECT_EQ(o.events, 4);
  EXPECT_EQ(o.errors_recovered, 1);
  EXPECT_EQ(o.subtrees_skipped, 0);
  EXPECT_EQ(o.stream_error.code, StreamErrorCode::kTruncatedDocument);
  EXPECT_EQ(o.stream_error.offset, 2);
  ASSERT_EQ(o.recovered.size(), 1u);
  EXPECT_EQ(o.recovered[0].closed_label, -1);  // EOF record closes them all
}

TEST_F(SkipRecoveryTest, AutoCloseDiscardsAPartialTrailingTag) {
  Alphabet alphabet;
  alphabet.Intern("doc");
  alphabet.Intern("item");
  Dfa dfa = CompileRegex(".*", alphabet);
  StackQueryEvaluator machine(&dfa);
  Observed o = RunWhole(&machine, Format::kXmlLite, &alphabet, "<doc><ite",
                        RecoveryPolicy::kAutoClose);
  EXPECT_TRUE(o.finished);
  EXPECT_EQ(o.nodes, 1);  // the partial "<ite" never became an event
  EXPECT_EQ(o.events, 2);
}

TEST_F(SkipRecoveryTest, AutoCloseTermDrivesBlindCloses) {
  Observed o = RunWhole(&machine_, Format::kCompactTerm, &alphabet_, "a{b{",
                        RecoveryPolicy::kAutoClose);
  EXPECT_TRUE(o.finished);
  EXPECT_EQ(o.nodes, 2);
  EXPECT_EQ(o.events, 4);
}

TEST_F(SkipRecoveryTest, AutoCloseNeedsARoot) {
  Observed empty = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_, "",
                            RecoveryPolicy::kAutoClose);
  EXPECT_FALSE(empty.finished);
  EXPECT_EQ(empty.stream_error.code, StreamErrorCode::kTruncatedDocument);

  Observed ws = RunWhole(&machine_, Format::kCompactMarkup, &alphabet_,
                         "  \n\t ", RecoveryPolicy::kAutoClose);
  EXPECT_FALSE(ws.finished);
  EXPECT_TRUE(ws.failed);
}

// ---------------------------------------------------------------------------
// Degradation ladder: fused tier demotes to the generic tier on recovery.

// Forwards events but hides the TagDfa export, pinning the selector to
// the generic tier for differential comparison.
class OpaqueForwarder : public StreamMachine {
 public:
  explicit OpaqueForwarder(StreamMachine* inner) : inner_(inner) {}
  void Reset() override { inner_->Reset(); }
  void OnOpen(Symbol s) override { inner_->OnOpen(s); }
  void OnClose(Symbol s) override { inner_->OnClose(s); }
  bool InAcceptingState() const override {
    return inner_->InAcceptingState();
  }

 private:
  StreamMachine* inner_;
};

TEST(StreamRecoveryLadder, RecoveryDemotesTheFusedTierUntilReset) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  TagDfaMachine machine(&evaluator);
  StreamingSelector selector(&machine, Format::kCompactMarkup, &alphabet);
  selector.set_recovery_policy(RecoveryPolicy::kSkipMalformedSubtree);
  ASSERT_TRUE(selector.using_fused_fast_path());
  ASSERT_EQ(selector.active_tier(), Tier::kFusedByteTable);

  ASSERT_TRUE(selector.Feed("ab!BA"));
  ASSERT_TRUE(selector.Finish());
  EXPECT_EQ(selector.stats().errors_recovered, 1);
  // Recovery synthesized a machine-level close: the fused byte table
  // cannot express that, so the run finished on the generic tier.
  EXPECT_FALSE(selector.using_fused_fast_path());
  EXPECT_EQ(selector.active_tier(), Tier::kGenericMachine);

  // Reset re-arms the fast path.
  selector.Reset();
  EXPECT_TRUE(selector.using_fused_fast_path());

  // A clean document never demotes.
  ASSERT_TRUE(selector.Feed("abBA"));
  ASSERT_TRUE(selector.Finish());
  EXPECT_EQ(selector.active_tier(), Tier::kFusedByteTable);
}

TEST(StreamRecoveryLadder, DemotedRunsMatchTheGenericTierExactly) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  const std::string docs[] = {"ab!BA", "abAA", "ab!Bc!CA", "a!bB!A",
                              "abcCB!A", "aab!BAA"};
  for (const std::string& doc : docs) {
    TagDfaMachine fused_machine(&evaluator);
    Observed fused =
        RunWhole(&fused_machine, Format::kCompactMarkup, &alphabet, doc,
                 RecoveryPolicy::kSkipMalformedSubtree);
    TagDfaMachine inner(&evaluator);
    OpaqueForwarder generic_machine(&inner);
    Observed generic =
        RunWhole(&generic_machine, Format::kCompactMarkup, &alphabet, doc,
                 RecoveryPolicy::kSkipMalformedSubtree);
    EXPECT_EQ(fused, generic) << doc;
  }
}

// The third rung: a StackQueryEvaluator as the machine tolerates the
// synthesized events of recovery and reports stack diagnostics.
TEST(StreamRecoveryLadder, StackTierReportsDiagnostics) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine, Format::kCompactMarkup, &alphabet);
  selector.set_recovery_policy(RecoveryPolicy::kSkipMalformedSubtree);
  ASSERT_TRUE(selector.Feed("ab!BA"));
  ASSERT_TRUE(selector.Finish());
  EXPECT_EQ(machine.depth(), 0u);
  EXPECT_EQ(machine.underflow_closes(), 0u);
}

// ---------------------------------------------------------------------------
// Chunk invariance of recovered runs.

TEST(StreamRecoveryInvariance, RecoveredRunsAreChunkInvariant) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  struct Case {
    Format format;
    std::string text;
  };
  const Case cases[] = {
      {Format::kCompactMarkup, "ab!Bc!CA"},
      {Format::kCompactMarkup, "abAA"},
      {Format::kCompactMarkup, "aab?cC#BAA"},
      {Format::kXmlLite, "<a><junk>zz<i></i></junk><b></b></a>"},
      {Format::kXmlLite, "<a><b></c></b></a>"},
      {Format::kCompactTerm, "a{x{}b{}}"},
      {Format::kCompactTerm, "a{b{}#}"},
  };
  const RecoveryPolicy policies[] = {RecoveryPolicy::kFailFast,
                                     RecoveryPolicy::kSkipMalformedSubtree,
                                     RecoveryPolicy::kAutoClose};
  StreamLimits limits;
  limits.max_depth = 8;
  limits.max_recovered_errors = 4;
  Rng rng(2026);
  for (const Case& c : cases) {
    for (RecoveryPolicy policy : policies) {
      StackQueryEvaluator machine(&dfa);
      Observed whole =
          RunWhole(&machine, c.format, &alphabet, c.text, policy, limits);
      for (size_t chunk = 1; chunk <= c.text.size(); ++chunk) {
        Observed split = RunPieces(
            &machine, c.format, &alphabet,
            SplitAt(c.text, UniformCuts(c.text.size(), chunk)), policy,
            limits);
        EXPECT_EQ(split, whole)
            << c.text << " policy=" << RecoveryPolicyName(policy)
            << " chunk=" << chunk;
      }
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<size_t> cuts = RandomCuts(rng, c.text.size(), 6);
        Observed split = RunPieces(&machine, c.format, &alphabet,
                                   SplitAt(c.text, cuts), policy, limits);
        EXPECT_EQ(split, whole)
            << c.text << " policy=" << RecoveryPolicyName(policy);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The sanitized-document equivalence property: a run recovered with
// kSkipMalformedSubtree is semantically identical to a fail-fast parse
// of the document with each damaged region excised and the truncated
// element closed explicitly.

TEST(StreamRecoveryProperty, RecoveredRunEqualsSanitizedReparse) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  Rng rng(7);
  std::vector<Tree> trees = testing::SampleTrees(40, 3, &rng);
  StreamLimits limits;
  limits.max_depth = 64;
  int recovered_runs = 0;
  for (size_t t = 0; t < trees.size(); ++t) {
    EventStream events = Encode(trees[t]);
    struct Doc {
      Format format;
      std::string text;
    };
    const Doc docs[] = {
        {Format::kCompactMarkup, ToCompactMarkup(alphabet, events)},
        {Format::kXmlLite, ToXmlLite(alphabet, events)},
        {Format::kCompactTerm, ToCompactTerm(alphabet, events)},
    };
    for (const Doc& doc : docs) {
      for (int kind = 0; kind < kNumFaultKinds; ++kind) {
        std::string mutated = doc.text;
        FaultInjector injector(t * 131 + kind * 17 + 5);
        FaultReport report =
            injector.Apply(static_cast<FaultKind>(kind), &mutated);
        StackQueryEvaluator machine(&dfa);
        Observed run =
            RunWhole(&machine, doc.format, &alphabet, mutated,
                     RecoveryPolicy::kSkipMalformedSubtree, limits);
        if (!run.finished) continue;  // fatal damage: covered elsewhere
        std::string sanitized =
            Sanitize(mutated, run.recovered, doc.format, alphabet);
        Observed clean = RunWhole(&machine, doc.format, &alphabet, sanitized,
                                  RecoveryPolicy::kFailFast, limits);
        ASSERT_TRUE(clean.finished)
            << FaultKindName(report.kind) << " tree=" << t
            << "\nmutated:   " << mutated << "\nsanitized: " << sanitized
            << "\nerror: " << clean.stream_error.Render(&alphabet);
        EXPECT_EQ(clean.nodes, run.nodes);
        EXPECT_EQ(clean.events, run.events);
        EXPECT_EQ(clean.max_depth, run.max_depth);
        EXPECT_EQ(clean.matches, run.matches);
        EXPECT_EQ(clean.match_log, run.match_log)
            << FaultKindName(report.kind) << " tree=" << t
            << "\nmutated:   " << mutated << "\nsanitized: " << sanitized;
        if (run.errors_recovered > 0) ++recovered_runs;
      }
    }
  }
  // The corpus must actually exercise recovery, not just clean parses.
  EXPECT_GT(recovered_runs, 50);
}

}  // namespace
}  // namespace sst
