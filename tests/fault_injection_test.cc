// Tests of the deterministic fault-injection harness itself: mutators
// are pure functions of (document, seed), each FaultKind does what its
// name says, and the chunk-schedule helpers produce valid schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/rng.h"
#include "testing/fault_injection.h"

namespace sst {
namespace {

const char kDoc[] = "aabbBBcdDCabBAAA";  // balanced compact markup

std::string Mutate(FaultKind kind, uint64_t seed, FaultReport* report) {
  std::string doc = kDoc;
  FaultInjector injector(seed);
  *report = injector.Apply(kind, &doc);
  return doc;
}

TEST(FaultInjection, SameSeedSameMutation) {
  for (int kind = 0; kind < kNumFaultKinds; ++kind) {
    for (uint64_t seed : {uint64_t{1}, uint64_t{42}, uint64_t{20260807}}) {
      FaultReport r1, r2;
      std::string m1 = Mutate(static_cast<FaultKind>(kind), seed, &r1);
      std::string m2 = Mutate(static_cast<FaultKind>(kind), seed, &r2);
      EXPECT_EQ(m1, m2) << FaultKindName(static_cast<FaultKind>(kind));
      EXPECT_EQ(r1.offset, r2.offset);
      EXPECT_EQ(r1.length, r2.length);
      EXPECT_EQ(r1.changed, r2.changed);
    }
  }
}

TEST(FaultInjection, DifferentSeedsEventuallyDiffer) {
  FaultReport report;
  std::string base = Mutate(FaultKind::kFlipByte, 1, &report);
  bool any_different = false;
  for (uint64_t seed = 2; seed < 12; ++seed) {
    if (Mutate(FaultKind::kFlipByte, seed, &report) != base) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(FaultInjection, TruncateDropsATail) {
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultReport report;
    std::string mutated = Mutate(FaultKind::kTruncate, seed, &report);
    ASSERT_TRUE(report.changed);
    EXPECT_LT(mutated.size(), sizeof(kDoc) - 1);
    EXPECT_EQ(mutated, std::string(kDoc).substr(0, mutated.size()));
  }
}

TEST(FaultInjection, FlipByteChangesExactlyOneByte) {
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultReport report;
    std::string mutated = Mutate(FaultKind::kFlipByte, seed, &report);
    ASSERT_TRUE(report.changed);
    ASSERT_EQ(mutated.size(), sizeof(kDoc) - 1);
    int diffs = 0;
    for (size_t i = 0; i < mutated.size(); ++i) {
      if (mutated[i] != kDoc[i]) {
        ++diffs;
        EXPECT_EQ(i, report.offset);
      }
    }
    EXPECT_EQ(diffs, 1);
  }
}

TEST(FaultInjection, DuplicateAndDropChangeLengthByTheSpan) {
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultReport dup_report;
    std::string dup = Mutate(FaultKind::kDuplicateSpan, seed, &dup_report);
    ASSERT_TRUE(dup_report.changed);
    EXPECT_EQ(dup.size(), sizeof(kDoc) - 1 + dup_report.length);

    FaultReport drop_report;
    std::string drop = Mutate(FaultKind::kDropSpan, seed, &drop_report);
    ASSERT_TRUE(drop_report.changed);
    EXPECT_EQ(drop.size(), sizeof(kDoc) - 1 - drop_report.length);
  }
}

TEST(FaultInjection, SpliceInsertsBytesSomewhere) {
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultReport report;
    std::string mutated = Mutate(FaultKind::kSpliceSubtree, seed, &report);
    ASSERT_TRUE(report.changed);
    EXPECT_GT(mutated.size(), sizeof(kDoc) - 1);
    EXPECT_EQ(mutated.size(), sizeof(kDoc) - 1 + report.length);
  }
}

TEST(FaultInjection, UnbalanceCloseTouchesAClosingToken) {
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultReport report;
    std::string mutated = Mutate(FaultKind::kUnbalanceClose, seed, &report);
    ASSERT_TRUE(report.changed);
    // Either one close was deleted or one close was rewritten in place.
    if (mutated.size() == sizeof(kDoc) - 1) {
      EXPECT_NE(mutated, kDoc);
      char original = kDoc[report.offset];
      EXPECT_TRUE(original == '}' || (original >= 'A' && original <= 'Z'));
    } else {
      EXPECT_EQ(mutated.size(), sizeof(kDoc) - 2);
    }
  }
}

TEST(FaultInjection, InjectJunkInsertsNonStructuralBytes) {
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultReport report;
    std::string mutated = Mutate(FaultKind::kInjectJunk, seed, &report);
    ASSERT_TRUE(report.changed);
    ASSERT_EQ(mutated.size(), sizeof(kDoc) - 1 + report.length);
    for (size_t i = 0; i < report.length; ++i) {
      char c = mutated[report.offset + i];
      EXPECT_FALSE(std::isalnum(static_cast<unsigned char>(c))) << c;
      EXPECT_NE(c, '{');
      EXPECT_NE(c, '}');
      EXPECT_NE(c, '<');
      EXPECT_NE(c, '>');
    }
  }
}

TEST(FaultInjection, ApplyRandomAlwaysMutatesANonEmptyDocument) {
  for (uint64_t seed = 0; seed < 32; ++seed) {
    std::string doc = kDoc;
    FaultInjector injector(seed);
    FaultReport report = injector.ApplyRandom(&doc);
    EXPECT_TRUE(report.changed);
    EXPECT_NE(doc, kDoc);
  }
}

TEST(FaultInjection, EmptyDocumentReportsNoTarget) {
  // Kinds that need existing bytes report changed == false on "".
  for (FaultKind kind : {FaultKind::kTruncate, FaultKind::kFlipByte,
                         FaultKind::kDuplicateSpan, FaultKind::kDropSpan,
                         FaultKind::kUnbalanceClose}) {
    std::string doc;
    FaultInjector injector(9);
    FaultReport report = injector.Apply(kind, &doc);
    EXPECT_FALSE(report.changed) << FaultKindName(kind);
    EXPECT_TRUE(doc.empty());
  }
}

TEST(FaultInjection, SplitAtReassemblesTheInput) {
  const std::string bytes = "abcdefgh";
  struct Case {
    std::vector<size_t> cuts;
    size_t want_chunks;
  } cases[] = {
      {{}, 1},
      {{0}, 2},
      {{8}, 2},
      {{3, 3, 5}, 4},  // duplicate cut: an empty middle chunk
      {{1, 2, 3, 4, 5, 6, 7}, 8},
  };
  for (const Case& c : cases) {
    std::vector<std::string_view> chunks = SplitAt(bytes, c.cuts);
    EXPECT_EQ(chunks.size(), c.want_chunks);
    std::string glued;
    for (std::string_view chunk : chunks) glued.append(chunk);
    EXPECT_EQ(glued, bytes);
  }
}

TEST(FaultInjection, RandomCutsAreSortedAndInRange) {
  Rng rng(11);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<size_t> cuts = RandomCuts(rng, 100, 9);
    EXPECT_LE(cuts.size(), 9u);
    EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
    for (size_t cut : cuts) EXPECT_LE(cut, 100u);
    // The schedule must reassemble losslessly.
    std::string bytes(100, 'x');
    std::vector<std::string_view> chunks = SplitAt(bytes, cuts);
    size_t total = 0;
    for (std::string_view chunk : chunks) total += chunk.size();
    EXPECT_EQ(total, bytes.size());
  }
}

}  // namespace
}  // namespace sst
