// Socket-level chaos suite for the resilient serving layer (src/server):
// every test drives a real QueryServer over loopback TCP and synchronizes
// on protocol events (frames, EOF) or observable stats — never on bare
// sleeps. The malformed-document tests reuse the deterministic
// fault-injection harness so a wire verdict can be compared byte-for-byte
// against the offline engine's StreamError for the same mutated bytes.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "engine/multi_query.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/server.h"
#include "testing/fault_injection.h"
#include "trees/encoding.h"
#include "trees/tree.h"

namespace sst {
namespace {

// --- satellite units: StreamLimits validation + merging ---------------------

TEST(StreamLimits, DefaultIsValidAndUnlimited) {
  StreamLimits limits;
  EXPECT_TRUE(limits.unlimited());
  EXPECT_EQ(limits.Validate(), nullptr);
}

TEST(StreamLimits, ValidateRejectsUnsatisfiableGuards) {
  StreamLimits zero_depth;
  zero_depth.max_depth = 0;
  EXPECT_NE(zero_depth.Validate(), nullptr);

  StreamLimits negative_bytes;
  negative_bytes.max_document_bytes = -1;
  EXPECT_NE(negative_bytes.Validate(), nullptr);

  StreamLimits one_event;  // root open + close need two
  one_event.max_events = 1;
  EXPECT_NE(one_event.Validate(), nullptr);

  StreamLimits depth_above_events;
  depth_above_events.max_depth = 100;
  depth_above_events.max_events = 10;
  EXPECT_NE(depth_above_events.Validate(), nullptr);
}

TEST(StreamLimits, MergedIsElementwiseMinimum) {
  StreamLimits a;
  a.max_depth = 10;
  a.max_document_bytes = 1 << 20;
  StreamLimits b;
  b.max_depth = 64;
  b.max_events = 5000;

  StreamLimits merged = StreamLimits::Merged(a, b);
  EXPECT_EQ(merged.max_depth, 10);
  EXPECT_EQ(merged.max_document_bytes, 1 << 20);
  EXPECT_EQ(merged.max_events, 5000);
  EXPECT_EQ(merged.max_recovered_errors, StreamLimits::kUnlimited);
  // Commutes.
  EXPECT_EQ(merged, StreamLimits::Merged(b, a));
}

// --- protocol roundtrips -----------------------------------------------------

TEST(Protocol, RegisterRoundtrip) {
  RegisterRequest request;
  request.alphabet = "abcdef";
  request.format = StreamFormat::kCompactMarkup;
  request.limits.max_depth = 40;
  request.queries = {"/a//b", "//c", "/a/b/c"};

  RegisterRequest decoded;
  std::string error;
  ASSERT_TRUE(ParseRegister(EncodeRegister(request), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.alphabet, request.alphabet);
  EXPECT_EQ(decoded.format, request.format);
  EXPECT_EQ(decoded.limits, request.limits);
  EXPECT_EQ(decoded.queries, request.queries);
}

TEST(Protocol, CountsAndErrorRoundtrip) {
  std::vector<int64_t> counts{0, 17, 123456789, 3};
  std::vector<int64_t> decoded;
  ASSERT_TRUE(ParseCounts(EncodeCounts(counts), &decoded));
  EXPECT_EQ(decoded, counts);

  ErrorInfo info;
  info.code = "kLabelMismatch";
  info.offset = 42;
  info.depth = 3;
  info.message = "expected 'b', got 'c'";
  ErrorInfo out;
  ASSERT_TRUE(ParseErrorInfo(EncodeErrorInfo(info), &out));
  EXPECT_EQ(out.code, info.code);
  EXPECT_EQ(out.offset, info.offset);
  EXPECT_EQ(out.depth, info.depth);
  EXPECT_EQ(out.message, info.message);
}

TEST(Protocol, ShedReasonRoundtrip) {
  for (ShedReason reason :
       {ShedReason::kMaxConnections, ShedReason::kMaxStreams,
        ShedReason::kPoolSaturated, ShedReason::kDraining,
        ShedReason::kDrainDeadline, ShedReason::kIdleTimeout,
        ShedReason::kWriteTimeout}) {
    ShedReason decoded = ShedReason::kMaxConnections;
    ASSERT_TRUE(ParseShedReason(EncodeShed(reason), &decoded))
        << ShedReasonName(reason);
    EXPECT_EQ(decoded, reason);
  }
}

TEST(Protocol, DecoderRejectsOversizedFromHeaderAlone) {
  FrameDecoder decoder(/*max_payload=*/1024);
  // Declared 1 MiB payload; only the 5 header bytes ever arrive.
  std::string header;
  header.push_back(static_cast<char>(FrameType::kData));
  uint32_t declared = 1 << 20;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((declared >> (8 * i)) & 0xff));
  }
  decoder.Append(header);
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kTooLarge);
}

TEST(Protocol, DecoderRejectsUnknownType) {
  FrameDecoder decoder(1024);
  decoder.Append(std::string("Z\0\0\0\0", 5));
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Status::kBadType);
}

// --- test harness ------------------------------------------------------------

constexpr char kLetters[] = "abcdef";

std::vector<std::string> TestQueries() {
  return {"/a//b", "//c", "/a//b", "/d/e"};  // one duplicate: 3 slots
}

std::string MakeDocument(uint64_t seed, int nodes) {
  Alphabet alphabet = Alphabet::FromLetters(kLetters);
  Rng rng(seed);
  Tree tree;
  tree.AddRoot(static_cast<Symbol>(rng.NextBelow(6)));
  for (int i = 1; i < nodes; ++i) {
    int parent =
        rng.NextBool(0.6) ? i - 1 : static_cast<int>(rng.NextBelow(i));
    tree.AddChild(parent, static_cast<Symbol>(rng.NextBelow(6)));
  }
  return ToCompactMarkup(alphabet, Encode(tree));
}

// The offline ground truth: the same engine path the server runs.
struct OfflineVerdict {
  bool ok = false;
  std::vector<int64_t> counts;
  StreamError error;
};

OfflineVerdict OfflineRun(const std::vector<std::string>& queries,
                          std::string_view document) {
  std::vector<BatchQuery> batch;
  for (const std::string& text : queries) {
    batch.push_back(BatchQuery{QuerySyntax::kXPath, text});
  }
  auto plan = MultiQueryPlan::Compile(
      batch, Alphabet::FromLetters(kLetters), MultiQueryOptions{});
  BatchSession session(plan);
  OfflineVerdict verdict;
  verdict.ok = session.Feed(document) && session.Finish();
  if (verdict.ok) {
    verdict.counts = session.query_matches();
  } else {
    verdict.error = session.stream_error();
  }
  return verdict;
}

std::string DefaultRegisterPayload() {
  RegisterRequest request;
  request.alphabet = kLetters;
  request.queries = TestQueries();
  return EncodeRegister(request);
}

// Blocking loopback client; every read carries a poll deadline so a hung
// server fails the test instead of wedging the suite.
class TestClient {
 public:
  TestClient() = default;
  ~TestClient() { Close(); }

  bool Connect(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }

  void Send(FrameType type, std::string_view payload) {
    std::string out;
    AppendFrame(type, payload, &out);
    SendRaw(out);
  }

  void SendRaw(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return;  // peer closed; reads will surface the verdict
    }
  }

  // Next frame within `timeout_ms`; false on timeout, EOF, or error.
  bool ReadFrame(Frame* frame, int timeout_ms = 5000) {
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    while (true) {
      switch (decoder_.Next(frame)) {
        case FrameDecoder::Status::kFrame:
          return true;
        case FrameDecoder::Status::kNeedMore:
          break;
        default:
          return false;  // server never sends malformed frames
      }
      if (eof_) return false;
      if (!FillBuffer(deadline)) return false;
    }
  }

  // True if the peer half-closes (EOF) within `timeout_ms` with no
  // further frames.
  bool ReadEof(int timeout_ms = 5000) {
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    while (!eof_) {
      if (!FillBuffer(deadline)) return false;
    }
    Frame frame;
    return decoder_.Next(&frame) == FrameDecoder::Status::kNeedMore;
  }

  void CloseWrite() {
    if (fd_ >= 0) shutdown(fd_, SHUT_WR);
  }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  int fd() const { return fd_; }

 private:
  // One poll+read; false on timeout or socket error, true on progress
  // (bytes appended or EOF recorded).
  bool FillBuffer(std::chrono::steady_clock::time_point deadline) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return false;
    pollfd pfd{fd_, POLLIN, 0};
    int ready = poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready <= 0) return false;
    char buf[16 * 1024];
    ssize_t n = read(fd_, buf, sizeof buf);
    if (n > 0) {
      decoder_.Append(std::string_view(buf, static_cast<size_t>(n)));
      return true;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) return true;
    eof_ = true;  // EOF, or error (ECONNRESET et al.): reads are over
    return true;
  }

  int fd_ = -1;
  bool eof_ = false;
  FrameDecoder decoder_{1 << 20};
};

// Registers the default batch and consumes the kRegistered ack.
bool RegisterDefault(TestClient* client, RegisteredInfo* info = nullptr) {
  client->Send(FrameType::kRegister, DefaultRegisterPayload());
  Frame frame;
  if (!client->ReadFrame(&frame)) return false;
  if (frame.type != FrameType::kRegistered) return false;
  if (info != nullptr && !ParseRegistered(frame.payload, info)) return false;
  return true;
}

// Streams one document in fixed-size chunks and finishes it.
void SendDocument(TestClient* client, std::string_view document,
                  size_t chunk = 1024) {
  for (size_t off = 0; off < document.size(); off += chunk) {
    client->Send(FrameType::kData,
                 document.substr(off, std::min(chunk, document.size() - off)));
  }
  client->Send(FrameType::kFinish, "");
}

// Polls an observable condition with a deadline — synchronization on
// state the server exports, not on a sleep being "long enough".
template <typename Predicate>
bool WaitFor(Predicate&& predicate, int timeout_ms = 5000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (!predicate()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

int64_t RssKb() {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return -1;
  char line[256];
  int64_t kb = -1;
  while (std::fgets(line, sizeof line, file) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::atoll(line + 6);
      break;
    }
  }
  std::fclose(file);
  return kb;
}

ServerOptions SmallServerOptions() {
  ServerOptions options;
  options.num_workers = 2;
  options.limits.max_connections = 64;
  options.limits.max_streams = 32;
  return options;
}

// --- end-to-end basics -------------------------------------------------------

TEST(Server, AnswersCleanDocumentsLikeTheOfflineEngine) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  RegisteredInfo info;
  ASSERT_TRUE(RegisterDefault(&client, &info));
  EXPECT_EQ(info.num_queries, 4);
  EXPECT_EQ(info.num_slots, 3);  // duplicate query deduplicated

  for (uint64_t seed : {11u, 22u, 33u}) {
    std::string document = MakeDocument(seed, 3000);
    OfflineVerdict offline = OfflineRun(TestQueries(), document);
    ASSERT_TRUE(offline.ok);

    SendDocument(&client, document);
    Frame frame;
    ASSERT_TRUE(client.ReadFrame(&frame));
    ASSERT_EQ(frame.type, FrameType::kCounts);
    std::vector<int64_t> counts;
    ASSERT_TRUE(ParseCounts(frame.payload, &counts));
    EXPECT_EQ(counts, offline.counts);
  }

  client.Send(FrameType::kGoodbye, "");
  EXPECT_TRUE(client.ReadEof());
  server.Stop();
  EXPECT_EQ(server.stats().streams_completed, 3);
}

// --- streamed match events over the wire -------------------------------------

// Drains kMatches frames into `records` until a non-kMatches frame (the
// document's verdict) arrives.
bool ReadMatchesUntilVerdict(TestClient* client,
                             std::vector<MatchWireRecord>* records,
                             Frame* verdict) {
  Frame frame;
  while (client->ReadFrame(&frame)) {
    if (frame.type == FrameType::kMatches) {
      std::vector<MatchWireRecord> decoded;
      if (!ParseMatches(frame.payload, &decoded)) return false;
      records->insert(records->end(), decoded.begin(), decoded.end());
      continue;
    }
    *verdict = std::move(frame);
    return true;
  }
  return false;
}

// The offline oracle's wire records: the same engine path with the same
// sink type, fed in one chunk (the product tier's event log is
// chunking-invariant, so the wire must replay it byte for byte).
std::vector<MatchWireRecord> OfflineMatchRecords(
    const std::vector<std::string>& queries, std::string_view document,
    bool* ok) {
  std::vector<BatchQuery> batch;
  for (const std::string& text : queries) {
    batch.push_back(BatchQuery{QuerySyntax::kXPath, text});
  }
  auto plan = MultiQueryPlan::Compile(
      batch, Alphabet::FromLetters(kLetters), MultiQueryOptions{});
  BatchSession session(plan);
  MatchWireBuffer sink;
  session.set_match_sink(&sink);
  *ok = session.Feed(document) && session.Finish();
  return sink.Take();
}

TEST(Server, MatchFramesReplayOfflineSinkExactly) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  RegisterRequest request;
  request.alphabet = kLetters;
  request.queries = TestQueries();
  request.matches = true;
  client.Send(FrameType::kRegister, EncodeRegister(request));
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kRegistered);

  int64_t total_opens = 0;
  for (uint64_t seed : {11u, 22u}) {
    std::string document = MakeDocument(seed, 2000);
    OfflineVerdict offline = OfflineRun(TestQueries(), document);
    ASSERT_TRUE(offline.ok);
    bool offline_ok = false;
    std::vector<MatchWireRecord> expected =
        OfflineMatchRecords(TestQueries(), document, &offline_ok);
    ASSERT_TRUE(offline_ok);

    SendDocument(&client, document, /*chunk=*/777);
    std::vector<MatchWireRecord> records;
    Frame verdict;
    ASSERT_TRUE(ReadMatchesUntilVerdict(&client, &records, &verdict));
    ASSERT_EQ(verdict.type, FrameType::kCounts);
    std::vector<int64_t> counts;
    ASSERT_TRUE(ParseCounts(verdict.payload, &counts));
    EXPECT_EQ(counts, offline.counts);
    EXPECT_EQ(records, expected);

    // Counting parity straight off the wire: OnMatch records per query
    // reproduce the kCounts verdict.
    std::vector<int64_t> wire_counts(counts.size(), 0);
    for (const MatchWireRecord& record : records) {
      if (!record.close) {
        ASSERT_GE(record.event.query_id, 0);
        ASSERT_LT(static_cast<size_t>(record.event.query_id),
                  wire_counts.size());
        ++wire_counts[static_cast<size_t>(record.event.query_id)];
        ++total_opens;
      }
    }
    EXPECT_EQ(wire_counts, counts);
  }

  // A truncated document: the spans still pending at the error arrive
  // truncated (end -1) before the kError verdict — reported, not dropped.
  std::string document = MakeDocument(33, 1500);
  document.resize(document.size() / 2);
  bool offline_ok = true;
  std::vector<MatchWireRecord> expected =
      OfflineMatchRecords(TestQueries(), document, &offline_ok);
  ASSERT_FALSE(offline_ok);
  SendDocument(&client, document, /*chunk=*/777);
  std::vector<MatchWireRecord> records;
  Frame verdict;
  ASSERT_TRUE(ReadMatchesUntilVerdict(&client, &records, &verdict));
  ASSERT_EQ(verdict.type, FrameType::kError);
  EXPECT_EQ(records, expected);
  bool saw_truncated = false;
  for (const MatchWireRecord& record : records) {
    saw_truncated |= record.close && record.event.end_offset == -1;
  }
  EXPECT_TRUE(saw_truncated);

  EXPECT_GE(server.stats().matches_emitted, total_opens);
  EXPECT_GE(server.stats().match_buffer_peak, 1);

  client.Send(FrameType::kGoodbye, "");
  EXPECT_TRUE(client.ReadEof());
  server.Stop();
}

// Counts-only registrations must never receive kMatches frames.
TEST(Server, CountsOnlyClientsSeeNoMatchFrames) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&client));
  SendDocument(&client, MakeDocument(7, 1000));
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kCounts);
  EXPECT_EQ(server.stats().matches_emitted, 0);
  server.Stop();
}

TEST(Server, MetricsFrameAndStatsAgree) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&client));
  SendDocument(&client, MakeDocument(1, 500));
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kCounts);

  client.Send(FrameType::kMetrics, "");
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kMetricsText);
  EXPECT_NE(frame.payload.find("server_streams_completed 1"),
            std::string::npos)
      << frame.payload;
  EXPECT_NE(frame.payload.find("server_batches_registered 1"),
            std::string::npos);
  server.Stop();
}

TEST(Server, RegistryDeduplicatesIdenticalBatches) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient first, second;
  ASSERT_TRUE(first.Connect(server.port()));
  ASSERT_TRUE(second.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&first));
  ASSERT_TRUE(RegisterDefault(&second));
  EXPECT_EQ(server.stats().batches_registered, 1);

  // A textually different but canonically distinct batch adds a second.
  RegisterRequest request;
  request.alphabet = kLetters;
  request.queries = {"/f//a"};
  second.Send(FrameType::kGoodbye, "");
  ASSERT_TRUE(second.ReadEof());
  TestClient third;
  ASSERT_TRUE(third.Connect(server.port()));
  third.Send(FrameType::kRegister, EncodeRegister(request));
  Frame frame;
  ASSERT_TRUE(third.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kRegistered);
  EXPECT_EQ(server.stats().batches_registered, 2);
  server.Stop();
}

// --- malformed documents: wire verdict == offline StreamError ---------------

TEST(Server, MalformedDocumentVerdictMatchesOfflineFirstError) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&client));

  int mutated_docs = 0;
  for (int kind = 0; kind < kNumFaultKinds; ++kind) {
    for (uint64_t seed : {1u, 9u, 77u}) {
      std::string document = MakeDocument(seed + 100, 2000);
      FaultInjector injector(seed);
      FaultReport report =
          injector.Apply(static_cast<FaultKind>(kind), &document);
      if (!report.changed) continue;
      ++mutated_docs;

      OfflineVerdict offline = OfflineRun(TestQueries(), document);
      SendDocument(&client, document, /*chunk=*/311);  // odd chunking
      Frame frame;
      ASSERT_TRUE(client.ReadFrame(&frame))
          << FaultKindName(static_cast<FaultKind>(kind)) << " seed " << seed;

      if (offline.ok) {
        // The mutation happened to keep the document well-formed; counts
        // must still match exactly.
        ASSERT_EQ(frame.type, FrameType::kCounts);
        std::vector<int64_t> counts;
        ASSERT_TRUE(ParseCounts(frame.payload, &counts));
        EXPECT_EQ(counts, offline.counts);
        continue;
      }
      ASSERT_EQ(frame.type, FrameType::kError)
          << FaultKindName(static_cast<FaultKind>(kind)) << " seed " << seed;
      ErrorInfo info;
      ASSERT_TRUE(ParseErrorInfo(frame.payload, &info));
      EXPECT_EQ(info.code, StreamErrorCodeName(offline.error.code));
      EXPECT_EQ(info.offset, offline.error.offset);
      EXPECT_EQ(info.depth, offline.error.depth);
    }
  }
  ASSERT_GT(mutated_docs, 10);  // the loop really exercised the harness

  // The connection survived every verdict: a clean document still answers.
  std::string clean = MakeDocument(5, 800);
  OfflineVerdict offline = OfflineRun(TestQueries(), clean);
  SendDocument(&client, clean);
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kCounts);
  std::vector<int64_t> counts;
  ASSERT_TRUE(ParseCounts(frame.payload, &counts));
  EXPECT_EQ(counts, offline.counts);
  server.Stop();
}

TEST(Server, ZeroChunkDocumentVerdictMatchesOffline) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&client));

  OfflineVerdict offline = OfflineRun(TestQueries(), "");
  ASSERT_FALSE(offline.ok);
  client.Send(FrameType::kFinish, "");  // kFinish with no kData at all
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorInfo info;
  ASSERT_TRUE(ParseErrorInfo(frame.payload, &info));
  EXPECT_EQ(info.code, StreamErrorCodeName(offline.error.code));
  EXPECT_EQ(info.offset, offline.error.offset);
  server.Stop();
}

// --- protocol rejections ------------------------------------------------------

TEST(Server, BadRegistrationsAnsweredWithoutKillingTheServer) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  struct Case {
    const char* name;
    RegisterRequest request;
    const char* code;
  };
  std::vector<Case> cases;
  {
    Case unknown_label;
    unknown_label.name = "label outside alphabet";
    unknown_label.request.alphabet = kLetters;
    unknown_label.request.queries = {"/a//z"};
    unknown_label.code = "bad_register";
    cases.push_back(unknown_label);

    Case malformed;
    malformed.name = "malformed xpath";
    malformed.request.alphabet = kLetters;
    malformed.request.queries = {"a///"};
    malformed.code = "bad_register";
    cases.push_back(malformed);

    Case bad_alphabet;
    bad_alphabet.name = "non-letter alphabet";
    bad_alphabet.request.alphabet = "ab1";
    bad_alphabet.request.queries = {"/a"};
    bad_alphabet.code = "bad_register";
    cases.push_back(bad_alphabet);

    Case bad_limits;
    bad_limits.name = "unsatisfiable limits";
    bad_limits.request.alphabet = kLetters;
    bad_limits.request.queries = {"/a"};
    bad_limits.request.limits.max_depth = 0;
    bad_limits.code = "bad_limits";
    cases.push_back(bad_limits);
  }

  for (const Case& test_case : cases) {
    TestClient client;
    ASSERT_TRUE(client.Connect(server.port())) << test_case.name;
    client.Send(FrameType::kRegister, EncodeRegister(test_case.request));
    Frame frame;
    ASSERT_TRUE(client.ReadFrame(&frame)) << test_case.name;
    ASSERT_EQ(frame.type, FrameType::kError) << test_case.name;
    ErrorInfo info;
    ASSERT_TRUE(ParseErrorInfo(frame.payload, &info));
    EXPECT_EQ(info.code, test_case.code) << test_case.name;
    EXPECT_TRUE(client.ReadEof()) << test_case.name;
  }

  // The server survived every rejection.
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&client));
  EXPECT_GE(server.stats().protocol_errors, 4);
  server.Stop();
}

TEST(Server, OversizedFrameRejectedFromItsHeader) {
  ServerOptions options = SmallServerOptions();
  options.limits.max_frame_payload = 4096;
  QueryServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  // Header declaring 1 MiB; the payload never needs to be sent for the
  // rejection to arrive.
  std::string header;
  header.push_back(static_cast<char>(FrameType::kData));
  uint32_t declared = 1 << 20;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((declared >> (8 * i)) & 0xff));
  }
  client.SendRaw(header);
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorInfo info;
  ASSERT_TRUE(ParseErrorInfo(frame.payload, &info));
  EXPECT_EQ(info.code, "frame_too_large");
  EXPECT_TRUE(client.ReadEof());
  server.Stop();
}

TEST(Server, UnknownFrameTypeAndUnregisteredDataRejected) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    TestClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    client.SendRaw(std::string("Z\0\0\0\0", 5));
    Frame frame;
    ASSERT_TRUE(client.ReadFrame(&frame));
    ASSERT_EQ(frame.type, FrameType::kError);
    ErrorInfo info;
    ASSERT_TRUE(ParseErrorInfo(frame.payload, &info));
    EXPECT_EQ(info.code, "bad_frame");
    EXPECT_TRUE(client.ReadEof());
  }
  {
    TestClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    client.Send(FrameType::kData, "aA");
    Frame frame;
    ASSERT_TRUE(client.ReadFrame(&frame));
    ASSERT_EQ(frame.type, FrameType::kError);
    ErrorInfo info;
    ASSERT_TRUE(ParseErrorInfo(frame.payload, &info));
    EXPECT_EQ(info.code, "not_registered");
    EXPECT_TRUE(client.ReadEof());
  }
  server.Stop();
}

// --- chaos: disconnects, slow-loris, overload, backpressure ------------------

TEST(Server, MidStreamDisconnectReturnsTheLeasedSession) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    TestClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    ASSERT_TRUE(RegisterDefault(&client));
    // Half a document, then vanish.
    std::string document = MakeDocument(3, 4000);
    client.Send(FrameType::kData, document.substr(0, document.size() / 2));
    // Make sure the server actually started the stream before the cut.
    ASSERT_TRUE(WaitFor([&] { return server.stats().streams_started == 1; }));
    client.Close();
  }

  ASSERT_TRUE(WaitFor([&] {
    ServerStats stats = server.stats();
    return stats.disconnects_mid_stream == 1 && stats.active_streams == 0 &&
           stats.pool.outstanding == 0 && stats.active_connections == 0;
  })) << RenderMetrics(server.stats());
  server.Stop();
}

TEST(Server, SlowLorisHitsTheIdleTimeout) {
  ServerOptions options = SmallServerOptions();
  options.limits.idle_timeout_ms = 100;
  QueryServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&client));
  // One byte of a frame header, then silence: the classic slow loris.
  client.SendRaw("D");
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame, /*timeout_ms=*/5000));
  ASSERT_EQ(frame.type, FrameType::kShed);
  ShedReason reason;
  ASSERT_TRUE(ParseShedReason(frame.payload, &reason));
  EXPECT_EQ(reason, ShedReason::kIdleTimeout);
  EXPECT_TRUE(client.ReadEof());
  EXPECT_EQ(server.stats().idle_timeouts, 1);
  server.Stop();
}

TEST(Server, OverloadShedsWithTypedVerdictsAndBoundedMemory) {
  ServerOptions options = SmallServerOptions();
  options.limits.max_streams = 2;
  QueryServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::string document = MakeDocument(8, 3000);
  OfflineVerdict offline = OfflineRun(TestQueries(), document);
  ASSERT_TRUE(offline.ok);

  // Two streams occupy the whole capacity (partial documents, no finish).
  TestClient holders[2];
  for (TestClient& holder : holders) {
    ASSERT_TRUE(holder.Connect(server.port()));
    ASSERT_TRUE(RegisterDefault(&holder));
    holder.Send(FrameType::kData, document.substr(0, 512));
  }
  ASSERT_TRUE(WaitFor([&] { return server.stats().active_streams == 2; }));

  // 2x the capacity on top: every extra document sheds with a typed frame,
  // the connection survives, and server memory stays flat.
  int64_t rss_before_kb = RssKb();
  TestClient extra;
  ASSERT_TRUE(extra.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&extra));
  constexpr int kOverloadDocs = 50;
  for (int i = 0; i < kOverloadDocs; ++i) {
    SendDocument(&extra, document);
    Frame frame;
    ASSERT_TRUE(extra.ReadFrame(&frame)) << "overload doc " << i;
    ASSERT_EQ(frame.type, FrameType::kShed) << "overload doc " << i;
    ShedReason reason;
    ASSERT_TRUE(ParseShedReason(frame.payload, &reason));
    EXPECT_EQ(reason, ShedReason::kMaxStreams);
  }
  int64_t rss_after_kb = RssKb();
  EXPECT_EQ(server.stats().sheds_stream, kOverloadDocs);
  if (rss_before_kb > 0 && rss_after_kb > 0) {
    EXPECT_LT(rss_after_kb - rss_before_kb, 32 * 1024)  // < 32 MiB growth
        << "RSS grew from " << rss_before_kb << " to " << rss_after_kb;
  }

  // Capacity freed: the holders finish and verdict normally, after which
  // the shed-prone connection is admitted again.
  for (TestClient& holder : holders) {
    SendDocument(&holder, document.substr(512));
    Frame frame;
    ASSERT_TRUE(holder.ReadFrame(&frame));
    ASSERT_EQ(frame.type, FrameType::kCounts);
  }
  ASSERT_TRUE(WaitFor([&] { return server.stats().active_streams == 0; }));
  SendDocument(&extra, document);
  Frame frame;
  ASSERT_TRUE(extra.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kCounts);
  std::vector<int64_t> counts;
  ASSERT_TRUE(ParseCounts(frame.payload, &counts));
  EXPECT_EQ(counts, offline.counts);
  server.Stop();
}

TEST(Server, ConnectionShedBeyondMaxConnectionsIsTyped) {
  ServerOptions options = SmallServerOptions();
  options.limits.max_connections = 1;
  QueryServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient first;
  ASSERT_TRUE(first.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&first));  // round trip: admission recorded

  TestClient second;
  ASSERT_TRUE(second.Connect(server.port()));
  Frame frame;
  ASSERT_TRUE(second.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kShed);
  ShedReason reason;
  ASSERT_TRUE(ParseShedReason(frame.payload, &reason));
  EXPECT_EQ(reason, ShedReason::kMaxConnections);
  EXPECT_TRUE(second.ReadEof());
  EXPECT_EQ(server.stats().sheds_connection, 1);
  server.Stop();
}

TEST(Server, BackpressurePausesReadsUntilTheClientDrains) {
  ServerOptions options = SmallServerOptions();
  options.limits.max_output_buffer = 4096;
  options.limits.resume_output_buffer = 1024;
  QueryServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&client));

  // A burst of metrics requests without reading a byte back: each reply
  // is ~1 KiB, so the 4 KiB output bound trips and the server must stop
  // reading instead of buffering without limit.
  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) client.Send(FrameType::kMetrics, "");
  ASSERT_TRUE(
      WaitFor([&] { return server.stats().backpressure_pauses >= 1; }));

  // Draining the socket resumes the paused connection; every reply
  // eventually arrives, in order, none dropped.
  for (int i = 0; i < kBurst; ++i) {
    Frame frame;
    ASSERT_TRUE(client.ReadFrame(&frame)) << "reply " << i;
    ASSERT_EQ(frame.type, FrameType::kMetricsText) << "reply " << i;
  }
  server.Stop();
}

// --- drain -------------------------------------------------------------------

TEST(Server, DrainFinishesInFlightDocumentWithIdenticalCounts) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::string document = MakeDocument(21, 4000);
  OfflineVerdict offline = OfflineRun(TestQueries(), document);
  ASSERT_TRUE(offline.ok);

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&client));
  client.Send(FrameType::kData, document.substr(0, document.size() / 2));
  ASSERT_TRUE(WaitFor([&] { return server.stats().active_streams == 1; }));

  server.RequestDrain();
  ASSERT_TRUE(WaitFor([&] { return server.draining(); }));

  // The in-flight document finishes normally — byte-identical verdict —
  // and only then does the typed drain verdict close the connection.
  client.Send(FrameType::kData, document.substr(document.size() / 2));
  client.Send(FrameType::kFinish, "");
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kCounts);
  std::vector<int64_t> counts;
  ASSERT_TRUE(ParseCounts(frame.payload, &counts));
  EXPECT_EQ(counts, offline.counts);

  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kShed);
  ShedReason reason;
  ASSERT_TRUE(ParseShedReason(frame.payload, &reason));
  EXPECT_EQ(reason, ShedReason::kDraining);
  EXPECT_TRUE(client.ReadEof());
  client.Close();

  server.WaitUntilDrained();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.drain_completed_streams, 1);
  EXPECT_EQ(stats.drain_forced_closes, 0);
  EXPECT_EQ(stats.active_connections, 0);
  EXPECT_EQ(stats.active_streams, 0);
}

TEST(Server, DrainDeadlineForceClosesStragglersWithTypedVerdict) {
  ServerOptions options = SmallServerOptions();
  options.limits.drain_deadline_ms = 100;
  QueryServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&client));
  client.Send(FrameType::kData, MakeDocument(4, 2000).substr(0, 256));
  ASSERT_TRUE(WaitFor([&] { return server.stats().active_streams == 1; }));

  server.RequestDrain();
  // Never finish the document: the deadline hammer must fall.
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame, /*timeout_ms=*/5000));
  ASSERT_EQ(frame.type, FrameType::kShed);
  ShedReason reason;
  ASSERT_TRUE(ParseShedReason(frame.payload, &reason));
  EXPECT_EQ(reason, ShedReason::kDrainDeadline);
  EXPECT_TRUE(client.ReadEof());
  client.Close();

  server.WaitUntilDrained();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.drain_forced_closes, 1);
  EXPECT_EQ(stats.active_streams, 0);
  EXPECT_EQ(stats.pool.outstanding, 0);
}

TEST(Server, SigtermDrainsThroughTheSignalPipe) {
  QueryServer server(SmallServerOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_TRUE(server.InstallSignalDrain(SIGTERM));

  TestClient idle;
  ASSERT_TRUE(idle.Connect(server.port()));
  ASSERT_TRUE(RegisterDefault(&idle));

  raise(SIGTERM);

  // The idle connection is shed with the drain verdict and the server
  // winds down completely.
  Frame frame;
  ASSERT_TRUE(idle.ReadFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kShed);
  ShedReason reason;
  ASSERT_TRUE(ParseShedReason(frame.payload, &reason));
  EXPECT_EQ(reason, ShedReason::kDraining);
  EXPECT_TRUE(idle.ReadEof());
  idle.Close();

  server.WaitUntilDrained();
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(server.stats().active_connections, 0);
}

}  // namespace
}  // namespace sst
