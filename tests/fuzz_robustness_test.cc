// Robustness sweeps: random and adversarial byte/event streams must never
// crash any component — parsers reject malformed input with an error, and
// machines behave deterministically on invalid encodings (the paper's
// automata may accept or reject invalid encodings arbitrarily, but the
// implementations must stay memory-safe and terminating).

#include <string>

#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "dra/machine.h"
#include "dra/paper_examples.h"
#include "dra/streaming.h"
#include "eval/el_synopsis.h"
#include "eval/stack_evaluator.h"
#include "eval/stackless_query.h"
#include "trees/encoding.h"

namespace sst {
namespace {

std::string RandomBytes(Rng* rng, int length, const char* pool) {
  std::string bytes;
  size_t pool_size = std::string(pool).size();
  for (int i = 0; i < length; ++i) {
    bytes.push_back(pool[rng->NextBelow(pool_size)]);
  }
  return bytes;
}

TEST(Fuzz, StreamingSelectorSurvivesRandomBytes) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  Rng rng(101);
  const char* pools[] = {"abcABC", "abcABC{}<>/x ", "<>/ab c}"};
  for (auto format : {StreamingSelector::Format::kCompactMarkup,
                      StreamingSelector::Format::kXmlLite,
                      StreamingSelector::Format::kCompactTerm}) {
    for (int trial = 0; trial < 300; ++trial) {
      StackQueryEvaluator machine(&dfa);
      StreamingSelector selector(&machine, format, &alphabet);
      std::string bytes = RandomBytes(
          &rng, 1 + static_cast<int>(rng.NextBelow(60)),
          pools[trial % 3]);
      bool fed = selector.Feed(bytes);
      bool finished = fed && selector.Finish();
      if (!finished) {
        EXPECT_FALSE(selector.error().empty());
      } else {
        // Whatever parsed must have been a balanced document.
        EXPECT_TRUE(selector.document_complete());
        EXPECT_GT(selector.nodes(), 0);
      }
    }
  }
}

TEST(Fuzz, ParsersRejectOrRoundTrip) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(103);
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes =
        RandomBytes(&rng, 1 + static_cast<int>(rng.NextBelow(30)),
                    "abcABC{}<> /");
    std::optional<EventStream> markup = ParseCompactMarkup(alphabet, bytes);
    if (markup.has_value() && IsValidEncoding(*markup)) {
      EXPECT_EQ(ToCompactMarkup(alphabet, *markup),
                [&] {
                  std::string stripped;
                  for (char c : bytes) {
                    if (!std::isspace(static_cast<unsigned char>(c))) {
                      stripped.push_back(c);
                    }
                  }
                  return stripped;
                }());
    }
    std::optional<EventStream> term = ParseCompactTerm(alphabet, bytes);
    if (term.has_value()) {
      // May still be unbalanced; Decode is the arbiter and must not crash.
      (void)Decode(*term);
    }
  }
}

TEST(Fuzz, MachinesSurviveInvalidEventStreams) {
  // Random (possibly unbalanced, mismatched) event streams through every
  // machine type; only termination and memory-safety are asserted.
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  StackQueryEvaluator stack(&dfa);
  StacklessQueryEvaluator stackless(dfa, false);
  ElSynopsisRecognizer synopsis(dfa, false);
  Dra same_depth = BuildSameDepthDra(2, 0);
  DraRunner dra(&same_depth);
  Rng rng(107);
  for (int trial = 0; trial < 300; ++trial) {
    EventStream events;
    int length = 1 + static_cast<int>(rng.NextBelow(40));
    for (int i = 0; i < length; ++i) {
      events.push_back(
          {rng.NextBool(0.5), static_cast<Symbol>(rng.NextBelow(2))});
    }
    for (StreamMachine* machine :
         {static_cast<StreamMachine*>(&stack),
          static_cast<StreamMachine*>(&stackless),
          static_cast<StreamMachine*>(&synopsis),
          static_cast<StreamMachine*>(&dra)}) {
      machine->Reset();
      for (const TagEvent& event : events) {
        if (event.open) {
          machine->OnOpen(event.symbol);
        } else {
          machine->OnClose(event.symbol);
        }
      }
      (void)machine->InAcceptingState();
    }
  }
}

TEST(Fuzz, DraRunnerDepthCanGoNegativeWithoutHarm) {
  // Closing tags at depth 0 push the counter negative; the model is
  // defined over Z and the runner must follow it.
  Dra same_depth = BuildSameDepthDra(2, 0);
  DraRunner runner(&same_depth);
  runner.Reset();
  for (int i = 0; i < 10; ++i) runner.OnClose(0);
  EXPECT_EQ(runner.depth(), -10);
  for (int i = 0; i < 20; ++i) runner.OnOpen(0);
  EXPECT_EQ(runner.depth(), 10);
}

}  // namespace
}  // namespace sst
