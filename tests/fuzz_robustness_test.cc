// Robustness sweeps: random and adversarial byte/event streams must never
// crash any component — parsers reject malformed input with an error, and
// machines behave deterministically on invalid encodings (the paper's
// automata may accept or reject invalid encodings arbitrarily, but the
// implementations must stay memory-safe and terminating).

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "dra/byte_runner.h"
#include "dra/machine.h"
#include "dra/paper_examples.h"
#include "dra/streaming.h"
#include "eval/el_synopsis.h"
#include "eval/stack_evaluator.h"
#include "eval/stackless_query.h"
#include "eval/registerless_query.h"
#include "test_util.h"
#include "testing/fault_injection.h"
#include "trees/encoding.h"

namespace sst {
namespace {

// Iteration multiplier for the scheduled long-fuzz CI job: SST_FUZZ_ITERS
// scales every sweep (default 1 keeps the suite fast for tier-1 runs).
int FuzzIters() {
  const char* env = std::getenv("SST_FUZZ_ITERS");
  if (env == nullptr) return 1;
  int iters = std::atoi(env);
  return iters > 0 ? iters : 1;
}

std::string RandomBytes(Rng* rng, int length, const char* pool) {
  std::string bytes;
  size_t pool_size = std::string(pool).size();
  for (int i = 0; i < length; ++i) {
    bytes.push_back(pool[rng->NextBelow(pool_size)]);
  }
  return bytes;
}

TEST(Fuzz, StreamingSelectorSurvivesRandomBytes) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  Rng rng(101);
  const char* pools[] = {"abcABC", "abcABC{}<>/x ", "<>/ab c}"};
  for (auto format : {StreamingSelector::Format::kCompactMarkup,
                      StreamingSelector::Format::kXmlLite,
                      StreamingSelector::Format::kCompactTerm}) {
    for (int trial = 0; trial < 300; ++trial) {
      StackQueryEvaluator machine(&dfa);
      StreamingSelector selector(&machine, format, &alphabet);
      std::string bytes = RandomBytes(
          &rng, 1 + static_cast<int>(rng.NextBelow(60)),
          pools[trial % 3]);
      bool fed = selector.Feed(bytes);
      bool finished = fed && selector.Finish();
      if (!finished) {
        EXPECT_FALSE(selector.error().empty());
      } else {
        // Whatever parsed must have been a balanced document.
        EXPECT_TRUE(selector.document_complete());
        EXPECT_GT(selector.nodes(), 0);
      }
    }
  }
}

TEST(Fuzz, ParsersRejectOrRoundTrip) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(103);
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes =
        RandomBytes(&rng, 1 + static_cast<int>(rng.NextBelow(30)),
                    "abcABC{}<> /");
    std::optional<EventStream> markup = ParseCompactMarkup(alphabet, bytes);
    if (markup.has_value() && IsValidEncoding(*markup)) {
      EXPECT_EQ(ToCompactMarkup(alphabet, *markup),
                [&] {
                  std::string stripped;
                  for (char c : bytes) {
                    if (!std::isspace(static_cast<unsigned char>(c))) {
                      stripped.push_back(c);
                    }
                  }
                  return stripped;
                }());
    }
    std::optional<EventStream> term = ParseCompactTerm(alphabet, bytes);
    if (term.has_value()) {
      // May still be unbalanced; Decode is the arbiter and must not crash.
      (void)Decode(*term);
    }
  }
}

TEST(Fuzz, MachinesSurviveInvalidEventStreams) {
  // Random (possibly unbalanced, mismatched) event streams through every
  // machine type; only termination and memory-safety are asserted.
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  StackQueryEvaluator stack(&dfa);
  StacklessQueryEvaluator stackless(dfa, false);
  ElSynopsisRecognizer synopsis(dfa, false);
  Dra same_depth = BuildSameDepthDra(2, 0);
  DraRunner dra(&same_depth);
  Rng rng(107);
  for (int trial = 0; trial < 300; ++trial) {
    EventStream events;
    int length = 1 + static_cast<int>(rng.NextBelow(40));
    for (int i = 0; i < length; ++i) {
      events.push_back(
          {rng.NextBool(0.5), static_cast<Symbol>(rng.NextBelow(2))});
    }
    for (StreamMachine* machine :
         {static_cast<StreamMachine*>(&stack),
          static_cast<StreamMachine*>(&stackless),
          static_cast<StreamMachine*>(&synopsis),
          static_cast<StreamMachine*>(&dra)}) {
      machine->Reset();
      for (const TagEvent& event : events) {
        if (event.open) {
          machine->OnOpen(event.symbol);
        } else {
          machine->OnClose(event.symbol);
        }
      }
      (void)machine->InAcceptingState();
    }
  }
}

// The observable outcome of one selector run, for differential checks.
struct FuzzOutcome {
  bool finished = false;
  int64_t nodes = 0;
  int64_t matches = 0;
  int64_t events = 0;
  int64_t errors_recovered = 0;
  int64_t subtrees_skipped = 0;
  StreamError error;

  friend bool operator==(const FuzzOutcome&, const FuzzOutcome&) = default;
};

FuzzOutcome RunSelector(StreamMachine* machine,
                        StreamingSelector::Format format, Alphabet* alphabet,
                        const std::vector<std::string_view>& pieces,
                        RecoveryPolicy policy, const StreamLimits& limits) {
  machine->Reset();
  StreamingSelector selector(machine, format, alphabet);
  selector.set_recovery_policy(policy);
  selector.set_limits(limits);
  bool fed = true;
  for (std::string_view piece : pieces) {
    if (!selector.Feed(piece)) {
      fed = false;
      break;
    }
  }
  FuzzOutcome out;
  out.finished = fed && selector.Finish();
  out.nodes = selector.nodes();
  out.matches = selector.matches();
  out.events = selector.stats().events;
  out.errors_recovered = selector.stats().errors_recovered;
  out.subtrees_skipped = selector.stats().subtrees_skipped;
  out.error = selector.stream_error();
  return out;
}

// Seeded fault-injection sweep: mutate valid documents of every format,
// run under every recovery policy, and require (a) no crash, (b) a
// structured error whenever the run did not finish, and (c) the same
// outcome when the bytes are re-split into chunks clustered around the
// error offset — the splits most likely to upset lexer or recovery
// state spanning a boundary.
TEST(Fuzz, MutatedDocumentsAreChunkSplitInvariant) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  StreamLimits limits;
  limits.max_depth = 256;
  const RecoveryPolicy policies[] = {RecoveryPolicy::kFailFast,
                                     RecoveryPolicy::kSkipMalformedSubtree,
                                     RecoveryPolicy::kAutoClose};
  for (int iter = 0; iter < FuzzIters(); ++iter) {
    Rng rng(900 + iter);
    std::vector<Tree> trees = testing::SampleTrees(20, 3, &rng);
    for (size_t t = 0; t < trees.size(); ++t) {
      EventStream events = Encode(trees[t]);
      struct Doc {
        StreamingSelector::Format format;
        std::string text;
      };
      const Doc docs[] = {
          {StreamingSelector::Format::kCompactMarkup,
           ToCompactMarkup(alphabet, events)},
          {StreamingSelector::Format::kXmlLite, ToXmlLite(alphabet, events)},
          {StreamingSelector::Format::kCompactTerm,
           ToCompactTerm(alphabet, events)},
      };
      for (const Doc& doc : docs) {
        for (int kind = 0; kind < kNumFaultKinds; ++kind) {
          std::string mutated = doc.text;
          FaultInjector injector(iter * 7919 + t * 131 + kind);
          injector.Apply(static_cast<FaultKind>(kind), &mutated);
          for (RecoveryPolicy policy : policies) {
            StackQueryEvaluator machine(&dfa);
            FuzzOutcome whole =
                RunSelector(&machine, doc.format, &alphabet,
                            {std::string_view(mutated)}, policy, limits);
            if (!whole.finished) {
              EXPECT_NE(whole.error.code, StreamErrorCode::kNone);
            }
            // Re-split around the error (or around the mutation when the
            // run recovered), byte by byte in a +/-2 window.
            size_t focus = whole.error.offset >= 0
                               ? static_cast<size_t>(whole.error.offset)
                               : mutated.size() / 2;
            size_t lo = focus > 2 ? focus - 2 : 0;
            for (size_t cut = lo;
                 cut <= focus + 2 && cut <= mutated.size(); ++cut) {
              std::vector<size_t> cuts = {cut};
              FuzzOutcome split =
                  RunSelector(&machine, doc.format, &alphabet,
                              SplitAt(mutated, cuts), policy, limits);
              ASSERT_EQ(split, whole)
                  << "cut=" << cut << " policy=" << RecoveryPolicyName(policy)
                  << " doc=" << mutated;
            }
            // And a few random schedules for good measure.
            for (int trial = 0; trial < 3; ++trial) {
              std::vector<size_t> cuts =
                  RandomCuts(injector.rng(), mutated.size(), 5);
              FuzzOutcome split =
                  RunSelector(&machine, doc.format, &alphabet,
                              SplitAt(mutated, cuts), policy, limits);
              ASSERT_EQ(split, whole)
                  << "policy=" << RecoveryPolicyName(policy)
                  << " doc=" << mutated;
            }
          }
        }
      }
    }
  }
}

// Differential: on compact markup, the streaming selector (fail-fast) and
// the batch validated runner are two implementations of one
// specification and must report the identical first StreamError.
TEST(Fuzz, SelectorAndValidatedRunnerAgreeOnMutants) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa query = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(query, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator);
  for (int iter = 0; iter < FuzzIters(); ++iter) {
    Rng rng(1700 + iter);
    std::vector<Tree> trees = testing::SampleTrees(20, 3, &rng);
    for (size_t t = 0; t < trees.size(); ++t) {
      std::string doc = ToCompactMarkup(alphabet, Encode(trees[t]));
      for (int kind = 0; kind < kNumFaultKinds; ++kind) {
        std::string mutated = doc;
        FaultInjector injector(iter * 524287 + t * 8191 + kind);
        injector.Apply(static_cast<FaultKind>(kind), &mutated);
        ValidatedRun batch = runner.RunValidated(mutated);
        TagDfaMachine machine(&evaluator);
        StreamingSelector selector(
            &machine, StreamingSelector::Format::kCompactMarkup, &alphabet);
        bool finished = selector.Feed(mutated) && selector.Finish();
        ASSERT_EQ(batch.ok(), finished) << mutated;
        ASSERT_EQ(batch.error, selector.stream_error()) << mutated;
        ASSERT_EQ(batch.matches, selector.matches()) << mutated;
        ASSERT_EQ(batch.events, selector.stats().events) << mutated;
      }
    }
  }
}

TEST(Fuzz, DraRunnerDepthCanGoNegativeWithoutHarm) {
  // Closing tags at depth 0 push the counter negative; the model is
  // defined over Z and the runner must follow it.
  Dra same_depth = BuildSameDepthDra(2, 0);
  DraRunner runner(&same_depth);
  runner.Reset();
  for (int i = 0; i < 10; ++i) runner.OnClose(0);
  EXPECT_EQ(runner.depth(), -10);
  for (int i = 0; i < 20; ++i) runner.OnOpen(0);
  EXPECT_EQ(runner.depth(), 10);
}

}  // namespace
}  // namespace sst
