#include <gtest/gtest.h>

#include "base/rng.h"
#include "dtd/path_dtd.h"
#include "test_util.h"
#include "treeauto/hedge_automaton.h"
#include "treeauto/hedge_builders.h"
#include "trees/generators.h"

namespace sst {
namespace {

bool ContainsLabel(const Tree& tree, Symbol target) {
  for (int id = 0; id < tree.size(); ++id) {
    if (tree.label(id) == target) return true;
  }
  return false;
}

TEST(HedgeAutomaton, SomeLabelMembership) {
  HedgeAutomaton automaton = SomeLabelHedgeAutomaton(2, /*target=*/0);
  ASSERT_TRUE(automaton.IsValid());
  Rng rng(3);
  for (const Tree& tree : testing::SampleTrees(200, 2, &rng)) {
    EXPECT_EQ(HedgeAccepts(automaton, tree), ContainsLabel(tree, 0));
  }
}

TEST(HedgeAutomaton, SomeLabelIsDeterministic) {
  EXPECT_TRUE(HedgeIsDeterministic(SomeLabelHedgeAutomaton(2, 0)));
}

TEST(HedgeAutomaton, ProductsMatchBooleanSemantics) {
  HedgeAutomaton some_a = SomeLabelHedgeAutomaton(2, 0);
  HedgeAutomaton some_b = SomeLabelHedgeAutomaton(2, 1);
  HedgeAutomaton both = HedgeIntersection(some_a, some_b);
  HedgeAutomaton either = HedgeUnion(some_a, some_b);
  Rng rng(5);
  for (const Tree& tree : testing::SampleTrees(150, 2, &rng)) {
    bool a = ContainsLabel(tree, 0);
    bool b = ContainsLabel(tree, 1);
    EXPECT_EQ(HedgeAccepts(both, tree), a && b);
    EXPECT_EQ(HedgeAccepts(either, tree), a || b);
  }
}

TEST(HedgeAutomaton, EmptinessFixpoint) {
  HedgeAutomaton some_a = SomeLabelHedgeAutomaton(2, 0);
  EXPECT_FALSE(HedgeIsEmpty(some_a));
  // Make it empty: no accepting states.
  HedgeAutomaton rejecting = some_a;
  rejecting.accepting.assign(rejecting.num_states, false);
  EXPECT_TRUE(HedgeIsEmpty(rejecting));
  // An automaton whose only accepting state is unassignable is also empty.
  HedgeAutomaton unassignable = HedgeAutomaton::Create(1, 2);
  unassignable.accepting[0] = true;  // horizontal languages default to ∅
  EXPECT_TRUE(HedgeIsEmpty(unassignable));
}

TEST(HedgeAutomaton, DeterminizePreservesLanguage) {
  HedgeAutomaton some_a = SomeLabelHedgeAutomaton(2, 0);
  std::optional<HedgeAutomaton> det = HedgeDeterminize(some_a, 64);
  ASSERT_TRUE(det.has_value());
  EXPECT_TRUE(HedgeIsDeterministic(*det));
  Rng rng(7);
  for (const Tree& tree : testing::SampleTrees(150, 2, &rng)) {
    EXPECT_EQ(HedgeAccepts(*det, tree), HedgeAccepts(some_a, tree));
  }
}

TEST(HedgeAutomaton, ComplementFlipsMembership) {
  std::optional<HedgeAutomaton> det =
      HedgeDeterminize(SomeLabelHedgeAutomaton(2, 0), 64);
  ASSERT_TRUE(det.has_value());
  HedgeAutomaton complement = HedgeComplement(*det);
  Rng rng(9);
  for (const Tree& tree : testing::SampleTrees(150, 2, &rng)) {
    EXPECT_EQ(HedgeAccepts(complement, tree), !ContainsLabel(tree, 0));
  }
}

TEST(HedgeAutomaton, EquivalenceDecidesExactly) {
  HedgeAutomaton some_a = SomeLabelHedgeAutomaton(2, 0);
  HedgeAutomaton some_b = SomeLabelHedgeAutomaton(2, 1);
  std::optional<bool> same = HedgeEquivalent(some_a, some_a, 256);
  ASSERT_TRUE(same.has_value());
  EXPECT_TRUE(*same);
  std::optional<bool> different = HedgeEquivalent(some_a, some_b, 256);
  ASSERT_TRUE(different.has_value());
  EXPECT_FALSE(*different);
  // De Morgan sanity: union of the two equals complement of intersection
  // of the complements.
  std::optional<HedgeAutomaton> da = HedgeDeterminize(some_a, 256);
  std::optional<HedgeAutomaton> db = HedgeDeterminize(some_b, 256);
  ASSERT_TRUE(da.has_value() && db.has_value());
  HedgeAutomaton lhs = HedgeUnion(some_a, some_b);
  HedgeAutomaton rhs_inner =
      HedgeIntersection(HedgeComplement(*da), HedgeComplement(*db));
  std::optional<HedgeAutomaton> rhs_det = HedgeDeterminize(rhs_inner, 256);
  ASSERT_TRUE(rhs_det.has_value());
  HedgeAutomaton rhs = HedgeComplement(*rhs_det);
  std::optional<bool> equal = HedgeEquivalent(lhs, rhs, 512);
  ASSERT_TRUE(equal.has_value());
  EXPECT_TRUE(*equal);
}

PathDtd SimpleDtd() {
  PathDtd dtd;
  dtd.num_symbols = 3;
  dtd.initial_symbol = 0;
  dtd.productions.resize(3);
  dtd.productions[0] = {{1}, /*allows_leaf=*/false};
  dtd.productions[1] = {{2}, /*allows_leaf=*/true};
  dtd.productions[2] = {{}, /*allows_leaf=*/true};
  return dtd;
}

TEST(HedgeAutomaton, PathDtdBridgeMatchesDirectValidation) {
  PathDtd dtd = SimpleDtd();
  HedgeAutomaton automaton = PathDtdToHedgeAutomaton(dtd);
  ASSERT_TRUE(automaton.IsValid());
  EXPECT_TRUE(HedgeIsDeterministic(automaton));
  EXPECT_FALSE(HedgeIsEmpty(automaton));
  Rng rng(11);
  int conforming = 0;
  for (const Tree& tree : testing::SampleTrees(300, 3, &rng)) {
    bool expected = SatisfiesPathDtd(dtd, tree);
    EXPECT_EQ(HedgeAccepts(automaton, tree), expected);
    conforming += expected ? 1 : 0;
  }
  // Include known-positive documents since random ones rarely conform.
  Tree good;
  int root = good.AddRoot(0);
  int b = good.AddChild(root, 1);
  good.AddChild(b, 2);
  EXPECT_TRUE(HedgeAccepts(automaton, good));
}

TEST(HedgeAutomaton, DifferentDtdsAreInequivalent) {
  PathDtd dtd = SimpleDtd();
  PathDtd variant = dtd;
  variant.productions[0].allows_leaf = true;  // a alone becomes valid
  std::optional<bool> equal = HedgeEquivalent(
      PathDtdToHedgeAutomaton(dtd), PathDtdToHedgeAutomaton(variant), 1024);
  ASSERT_TRUE(equal.has_value());
  EXPECT_FALSE(*equal);
  std::optional<bool> same = HedgeEquivalent(
      PathDtdToHedgeAutomaton(dtd), PathDtdToHedgeAutomaton(dtd), 1024);
  ASSERT_TRUE(same.has_value());
  EXPECT_TRUE(*same);
}

TEST(HedgeAutomaton, UnionOfIncompleteAutomataIsStillSound) {
  // The 'unassignable' automaton accepts nothing; union with some-a must
  // equal some-a even though one operand has no run on any tree.
  HedgeAutomaton nothing = HedgeAutomaton::Create(1, 2);
  nothing.accepting[0] = true;
  HedgeAutomaton some_a = SomeLabelHedgeAutomaton(2, 0);
  HedgeAutomaton merged = HedgeUnion(nothing, some_a);
  Rng rng(13);
  for (const Tree& tree : testing::SampleTrees(100, 2, &rng)) {
    EXPECT_EQ(HedgeAccepts(merged, tree), ContainsLabel(tree, 0));
  }
}

}  // namespace
}  // namespace sst
