#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/determinize.h"
#include "automata/dfa.h"
#include "automata/minimize.h"
#include "automata/nfa.h"
#include "automata/random_dfa.h"
#include "automata/regex.h"
#include "automata/scc.h"
#include "base/rng.h"

namespace sst {
namespace {

// Enumerates all words over [0, k) of length <= max_len in lexicographic
// order (shortlex).
std::vector<Word> AllWords(int k, int max_len) {
  std::vector<Word> result = {{}};
  std::vector<Word> frontier = {{}};
  for (int len = 1; len <= max_len; ++len) {
    std::vector<Word> next;
    for (const Word& w : frontier) {
      for (Symbol a = 0; a < k; ++a) {
        Word extended = w;
        extended.push_back(a);
        next.push_back(extended);
        result.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }
  return result;
}

TEST(Alphabet, InternAndLookup) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  EXPECT_EQ(alphabet.size(), 3);
  EXPECT_EQ(alphabet.Find("a"), 0);
  EXPECT_EQ(alphabet.Find("c"), 2);
  EXPECT_EQ(alphabet.Find("z"), -1);
  EXPECT_EQ(alphabet.LabelOf(1), "b");
  Alphabet xml;
  Symbol item = xml.Intern("item");
  EXPECT_EQ(xml.Intern("item"), item);
  EXPECT_EQ(xml.size(), 1);
}

TEST(Regex, ParseAndPrintRoundTrip) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  for (const char* pattern :
       {"a.*b", "ab", ".*a.*b", ".*ab", "(a|b)*c", "a+b?", "(b*ab*ab*)*"}) {
    RegexPtr regex = ParseRegex(pattern, alphabet);
    ASSERT_NE(regex, nullptr) << pattern;
    std::string printed = RegexToString(*regex, alphabet);
    RegexPtr reparsed = ParseRegex(printed, alphabet);
    // Compare languages through the minimal DFA.
    Dfa a = RegexToMinimalDfa(*regex, alphabet.size());
    Dfa b = RegexToMinimalDfa(*reparsed, alphabet.size());
    EXPECT_TRUE(EquivalentDfa(a, b)) << pattern << " vs " << printed;
  }
}

TEST(Regex, SyntaxErrorsAreReported) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  std::string error;
  EXPECT_EQ(TryParseRegex("a(", alphabet, &error), nullptr);
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_EQ(TryParseRegex("x", alphabet, &error), nullptr);  // not in alphabet
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_EQ(TryParseRegex("*a", alphabet, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(Nfa, MatchesRegexSemantics) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  RegexPtr regex = ParseRegex("(a|ba)*b?", alphabet);
  Nfa nfa = RegexToNfa(*regex, alphabet.size());
  EXPECT_TRUE(nfa.Accepts(WordFromString(alphabet, "")));
  EXPECT_TRUE(nfa.Accepts(WordFromString(alphabet, "aba")));
  EXPECT_TRUE(nfa.Accepts(WordFromString(alphabet, "ab")));
  EXPECT_TRUE(nfa.Accepts(WordFromString(alphabet, "baab")));
  EXPECT_FALSE(nfa.Accepts(WordFromString(alphabet, "bb")));
}

TEST(Determinize, AgreesWithNfaOnAllShortWords) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  for (const char* pattern : {"a.*b", ".*ab", "(ab|c)*", "a(b|c)*a", ".*"}) {
    RegexPtr regex = ParseRegex(pattern, alphabet);
    Nfa nfa = RegexToNfa(*regex, alphabet.size());
    Dfa dfa = Determinize(nfa);
    ASSERT_TRUE(dfa.IsValid());
    for (const Word& w : AllWords(3, 6)) {
      EXPECT_EQ(dfa.Accepts(w), nfa.Accepts(w))
          << pattern << " on " << WordToString(alphabet, w);
    }
  }
}

TEST(Minimize, PreservesLanguage) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  for (const char* pattern : {"a.*b", "ab", ".*a.*b", ".*ab", "(a|b)*"}) {
    RegexPtr regex = ParseRegex(pattern, alphabet);
    Dfa big = Determinize(RegexToNfa(*regex, alphabet.size()));
    Dfa minimal = Minimize(big);
    EXPECT_TRUE(EquivalentDfa(big, minimal)) << pattern;
    EXPECT_LE(minimal.num_states, big.num_states);
  }
}

TEST(Minimize, ProducesPaperSizes) {
  // The minimal automata of Fig 3 have 4, 4, 3, 3 states respectively.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  EXPECT_EQ(CompileRegex("a.*b", alphabet).num_states, 4);
  EXPECT_EQ(CompileRegex("ab", alphabet).num_states, 4);
  EXPECT_EQ(CompileRegex(".*a.*b", alphabet).num_states, 3);
  EXPECT_EQ(CompileRegex(".*ab", alphabet).num_states, 3);
}

TEST(Minimize, IsIdempotentAndCanonical) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Dfa dfa = RandomDfa(12, 2, 0.3, &rng);
    Dfa m1 = Minimize(dfa);
    Dfa m2 = Minimize(m1);
    EXPECT_EQ(m1.num_states, m2.num_states);
    EXPECT_EQ(m1.next_table, m2.next_table);
    EXPECT_EQ(m1.accepting, m2.accepting);
    EXPECT_TRUE(EquivalentDfa(dfa, m1));
  }
}

TEST(Minimize, MooreAndHopcroftProduceIdenticalAutomata) {
  // Two independent minimization algorithms as mutual oracles; the
  // canonical renumbering makes the results bit-identical.
  Rng rng(91);
  for (int trial = 0; trial < 60; ++trial) {
    Dfa dfa = RandomDfa(3 + trial % 18, 1 + trial % 3, 0.4, &rng);
    Dfa hopcroft = Minimize(dfa);
    Dfa moore = MinimizeMoore(dfa);
    ASSERT_EQ(hopcroft.num_states, moore.num_states);
    EXPECT_EQ(hopcroft.next_table, moore.next_table);
    EXPECT_EQ(hopcroft.accepting, moore.accepting);
    EXPECT_EQ(hopcroft.initial, moore.initial);
  }
  // Degenerate languages: all words, no words.
  Dfa all = Dfa::Create(3, 2);
  all.accepting.assign(3, true);
  for (int q = 0; q < 3; ++q) {
    all.SetNext(q, 0, (q + 1) % 3);
    all.SetNext(q, 1, q);
  }
  EXPECT_EQ(Minimize(all).num_states, MinimizeMoore(all).num_states);
  EXPECT_EQ(Minimize(all).num_states, 1);
}

TEST(Minimize, NoTwoStatesEquivalent) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    Dfa minimal = Minimize(RandomDfa(15, 3, 0.4, &rng));
    // Distinct states of a minimal DFA are inequivalent: some word must
    // distinguish them.
    for (int p = 0; p < minimal.num_states; ++p) {
      for (int q = p + 1; q < minimal.num_states; ++q) {
        Dfa from_p = minimal;
        from_p.initial = p;
        Dfa from_q = minimal;
        from_q.initial = q;
        EXPECT_FALSE(EquivalentDfa(from_p, from_q)) << p << " " << q;
      }
    }
  }
}

TEST(DfaOps, ComplementIntersectionUnion) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa starts_a = CompileRegex("a.*", alphabet);
  Dfa ends_b = CompileRegex(".*b", alphabet);
  Dfa both = Intersection(starts_a, ends_b);
  Dfa either = UnionDfa(starts_a, ends_b);
  Dfa not_a = Complement(starts_a);
  for (const Word& w : AllWords(2, 7)) {
    EXPECT_EQ(both.Accepts(w), starts_a.Accepts(w) && ends_b.Accepts(w));
    EXPECT_EQ(either.Accepts(w), starts_a.Accepts(w) || ends_b.Accepts(w));
    EXPECT_EQ(not_a.Accepts(w), !starts_a.Accepts(w));
  }
}

TEST(DfaOps, DistinguishingWordIsMinimalWitness) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa a = CompileRegex("a*", alphabet);
  Dfa b = CompileRegex("a*b?", alphabet);
  Word witness;
  ASSERT_TRUE(FindDistinguishingWord(a, b, &witness));
  EXPECT_NE(a.Accepts(witness), b.Accepts(witness));
  EXPECT_FALSE(FindDistinguishingWord(a, a, &witness));
}

TEST(DfaOps, ConnectingWords) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("(ab)*", alphabet);
  Word w;
  // A nonempty loop at the initial state exists: "ab".
  ASSERT_TRUE(FindConnectingWord(dfa, dfa.initial, dfa.initial,
                                 /*nonempty=*/true, &w));
  EXPECT_FALSE(w.empty());
  EXPECT_EQ(dfa.Run(dfa.initial, w), dfa.initial);
}

TEST(Scc, ChainAutomatonHasSingletonComponents) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("ab", alphabet);  // finite language: DAG-like
  SccInfo scc = ComputeScc(dfa);
  for (int c = 0; c < scc.num_components; ++c) {
    EXPECT_EQ(scc.members[c].size(), 1u);
  }
  // Edges of the condensation must respect the topological numbering: this
  // is SST_CHECKed inside ComputeScc; reaching here means it held.
  EXPECT_GE(LongestChainLength(scc), 2);
}

TEST(Scc, CycleDetected) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("(ab)*", alphabet);
  SccInfo scc = ComputeScc(dfa);
  bool found_nontrivial = false;
  for (int c = 0; c < scc.num_components; ++c) {
    if (scc.nontrivial[c] && scc.members[c].size() >= 2) {
      found_nontrivial = true;
    }
  }
  EXPECT_TRUE(found_nontrivial);
}

TEST(Scc, ComponentIdsAreTopological) {
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    Dfa dfa = RandomDfa(20, 2, 0.5, &rng);
    SccInfo scc = ComputeScc(dfa);
    for (int q = 0; q < dfa.num_states; ++q) {
      for (Symbol a = 0; a < dfa.num_symbols; ++a) {
        EXPECT_LE(scc.component_of[q], scc.component_of[dfa.Next(q, a)]);
      }
    }
  }
}

TEST(RandomDfaGenerators, ShapesHold) {
  Rng rng(42);
  Dfa perm = RandomPermutationDfa(6, 3, 0.5, &rng);
  for (Symbol a = 0; a < 3; ++a) {
    std::vector<bool> seen(6, false);
    for (int q = 0; q < 6; ++q) {
      EXPECT_FALSE(seen[perm.Next(q, a)]);
      seen[perm.Next(q, a)] = true;
    }
  }
  Dfa rtriv = RandomRTrivialDfa(8, 2, 0.5, &rng);
  SccInfo scc = ComputeScc(rtriv);
  for (int c = 0; c < scc.num_components; ++c) {
    EXPECT_EQ(scc.members[c].size(), 1u);
  }
}

}  // namespace
}  // namespace sst
