#include "dra/parallel_runner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "dra/byte_runner.h"
#include "dra/streaming.h"
#include "dra/tag_dfa.h"
#include "eval/registerless_query.h"
#include "test_util.h"
#include "testing/fault_injection.h"
#include "trees/encoding.h"
#include "trees/generators.h"

namespace sst {
namespace {

constexpr int kChunkCounts[] = {1, 2, 3, 7, 16};
constexpr int kThreadCounts[] = {1, 2, 8};
constexpr int kDedupIntervals[] = {7, 256};

TagDfa RandomTagDfa(int num_states, int num_symbols, Rng* rng) {
  TagDfa dfa = TagDfa::Create(num_states, num_symbols);
  dfa.initial = static_cast<int>(rng->NextBelow(num_states));
  for (int q = 0; q < num_states; ++q) {
    dfa.accepting[q] = rng->NextBool(0.3);
    for (Symbol a = 0; a < num_symbols; ++a) {
      dfa.SetNextOpen(q, a, static_cast<int>(rng->NextBelow(num_states)));
      dfa.SetNextClose(q, a, static_cast<int>(rng->NextBelow(num_states)));
    }
  }
  return dfa;
}

// Asserts that the parallel runner reproduces the sequential final state
// and selection count for every chunk count × thread count × dedup
// interval combination.
void ExpectParallelMatchesSequential(const ByteTagDfaRunner& runner,
                                     const std::string& bytes) {
  int64_t expected_count = runner.CountSelections(bytes);
  int expected_state = runner.FinalState(bytes);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (int dedup : kDedupIntervals) {
      ParallelTagDfaRunner parallel(&runner, &pool, dedup);
      for (int chunks : kChunkCounts) {
        ParallelTagDfaRunner::Result result = parallel.Run(bytes, chunks);
        ASSERT_EQ(result.selections, expected_count)
            << "threads=" << threads << " chunks=" << chunks
            << " dedup=" << dedup << " len=" << bytes.size();
        ASSERT_EQ(result.final_state, expected_state)
            << "threads=" << threads << " chunks=" << chunks
            << " dedup=" << dedup << " len=" << bytes.size();
      }
    }
  }
}

TEST(ParallelRunner, MatchesSequentialOnRandomTrees) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa query = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(query, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator);
  Rng rng(101);
  for (const Tree& tree : testing::SampleTrees(30, 3, &rng)) {
    ExpectParallelMatchesSequential(
        runner, ToCompactMarkup(alphabet, Encode(tree)));
  }
}

TEST(ParallelRunner, MatchesSequentialOnRandomAutomata) {
  Rng rng(202);
  for (int round = 0; round < 20; ++round) {
    int num_states = 2 + static_cast<int>(rng.NextBelow(9));
    TagDfa dfa = RandomTagDfa(num_states, 3, &rng);
    ByteTagDfaRunner runner(dfa);
    int nodes = 1 + static_cast<int>(rng.NextBelow(800));
    Tree tree = RandomTree(nodes, 3, rng.NextDouble(), &rng);
    std::string bytes =
        ToCompactMarkup(Alphabet::FromLetters("abc"), Encode(tree));
    // Inject whitespace and junk: both self-loop in the fused table and
    // must not disturb speculative composition.
    std::string noisy;
    for (char c : bytes) {
      if (rng.NextBool(0.1)) noisy += ' ';
      if (rng.NextBool(0.02)) noisy += '~';
      noisy += c;
    }
    ExpectParallelMatchesSequential(runner, noisy);
  }
}

TEST(ParallelRunner, MatchesSequentialOnLargeDocument) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa query = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(query, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator);
  Rng rng(303);
  Tree tree = RandomTree(20000, 3, 0.5, &rng);
  ExpectParallelMatchesSequential(runner,
                                  ToCompactMarkup(alphabet, Encode(tree)));
}

TEST(ParallelRunner, EdgeCaseInputs) {
  Rng rng(404);
  TagDfa dfa = RandomTagDfa(5, 2, &rng);
  ByteTagDfaRunner runner(dfa);
  ThreadPool pool(2);
  ParallelTagDfaRunner parallel(&runner, &pool);
  // Empty input: no chunks, initial state, zero selections.
  ParallelTagDfaRunner::Result empty = parallel.Run("", 8);
  EXPECT_EQ(empty.chunks, 0);
  EXPECT_EQ(empty.selections, 0);
  EXPECT_EQ(empty.final_state, runner.initial_state());
  // More chunks than bytes: clamps to one chunk per byte.
  ExpectParallelMatchesSequential(runner, "a");
  ExpectParallelMatchesSequential(runner, "abBA");
  // Null pool: chunks run inline, still speculatively.
  ParallelTagDfaRunner inline_runner(&runner, nullptr, 3);
  std::string bytes = "ababABABbaBAabAB";
  EXPECT_EQ(inline_runner.CountSelections(bytes, 5),
            runner.CountSelections(bytes));
  EXPECT_EQ(inline_runner.Accepts(bytes, 5), runner.Accepts(bytes));
}

// The wide (int32) table path: machines with >= 65536 states fall back to
// the uncompacted table and the speculative runner must dispatch to it.
TEST(ParallelRunner, WideTableMachineMatchesSequential) {
  const int n = 65600;
  TagDfa dfa = TagDfa::Create(n, 1);
  dfa.initial = 17;
  for (int q = 0; q < n; ++q) {
    dfa.accepting[q] = (q % 7) == 0;
    dfa.SetNextOpen(q, 0, (q * 5 + 1) % n);
    dfa.SetNextClose(q, 0, (q + 3) % n);
  }
  ByteTagDfaRunner runner(dfa);
  EXPECT_FALSE(runner.uses_compact_table());
  Rng rng(505);
  std::string bytes;
  for (int i = 0; i < 200; ++i) bytes += rng.NextBool() ? 'a' : 'A';
  ThreadPool pool(2);
  ParallelTagDfaRunner parallel(&runner, &pool, 16);
  ParallelTagDfaRunner::Result result = parallel.Run(bytes, 3);
  EXPECT_EQ(result.selections, runner.CountSelections(bytes));
  EXPECT_EQ(result.final_state, runner.FinalState(bytes));
}

// ---------------------------------------------------------------------------
// Malformed-input parity: the speculative validated run must report the
// byte-identical first StreamError — and the same partial counters — as
// the sequential validator, under every chunk/thread/dedup combination.

void ExpectValidatedParity(const ByteTagDfaRunner& runner,
                           const std::string& bytes,
                           const StreamLimits& limits = {}) {
  ValidatedRun expected = runner.RunValidated(bytes, limits);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (int dedup : kDedupIntervals) {
      ParallelTagDfaRunner parallel(&runner, &pool, dedup);
      for (int chunks : kChunkCounts) {
        ValidatedRun got = parallel.RunValidated(bytes, chunks, limits);
        ASSERT_EQ(got, expected)
            << "threads=" << threads << " chunks=" << chunks
            << " dedup=" << dedup << " doc=" << bytes
            << "\nexpected: " << expected.error.Render(nullptr)
            << "\ngot:      " << got.error.Render(nullptr);
      }
    }
  }
}

TEST(ParallelRunnerValidated, AgreesWithSequentialOnMalformedInputs) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa query = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(query, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator);
  const std::string docs[] = {
      "",          // truncated (empty)
      "ab",        // truncated mid-document
      "abBA",      // clean — ok() on both sides
      "ab?BA",     // junk byte at offset 2
      "abAB",      // label mismatch at offset 2
      "B",         // unbalanced close at offset 0
      "abBAB",     // unbalanced close after the root closed
      "abdDBA",    // unknown label 'd' at offset 2
      "aAbB",      // trailing content at offset 2
      "aA  bB",    // trailing content after whitespace
      "  abBA  ",  // leading/trailing whitespace, clean
      "aAA",       // unbalanced close at offset 2
      "aabb",      // truncated, depth 4 pending
  };
  for (const std::string& doc : docs) {
    ExpectValidatedParity(runner, doc);
  }
}

TEST(ParallelRunnerValidated, AgreesWithSequentialUnderLimits) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa query = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(query, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator);
  StreamLimits depth_limit;
  depth_limit.max_depth = 3;
  ExpectValidatedParity(runner, "ababBABA", depth_limit);
  ExpectValidatedParity(runner, "abaABA", depth_limit);  // exactly at limit
  StreamLimits byte_limit;
  byte_limit.max_document_bytes = 5;
  ExpectValidatedParity(runner, "abcCBA", byte_limit);
  ExpectValidatedParity(runner, "abBA", byte_limit);
  StreamLimits event_limit;
  event_limit.max_events = 3;
  ExpectValidatedParity(runner, "abcCBA", event_limit);
}

TEST(ParallelRunnerValidated, AgreesWithSequentialOnMutatedDocuments) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa query = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(query, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator);
  Rng rng(606);
  int failing_docs = 0;
  std::vector<Tree> trees = testing::SampleTrees(25, 3, &rng);
  for (size_t t = 0; t < trees.size(); ++t) {
    std::string doc = ToCompactMarkup(alphabet, Encode(trees[t]));
    for (int kind = 0; kind < kNumFaultKinds; ++kind) {
      std::string mutated = doc;
      FaultInjector injector(t * 1000 + kind);
      injector.Apply(static_cast<FaultKind>(kind), &mutated);
      ExpectValidatedParity(runner, mutated);
      if (!runner.RunValidated(mutated).ok()) ++failing_docs;
    }
  }
  EXPECT_GT(failing_docs, 40);  // the corpus must exercise error paths
}

// The validated runners and the streaming selector implement one
// specification: same first error (full structured payload) and same
// partial event/match counters at the stop point.
TEST(ParallelRunnerValidated, AgreesWithTheStreamingSelector) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa query = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(query, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator);
  ThreadPool pool(2);
  ParallelTagDfaRunner parallel(&runner, &pool);
  const std::string docs[] = {
      "abBA", "ab?BA", "abAB", "B",    "abBAB", "abdDBA",
      "aAbB", "ab",    "aAA",  "aabb", " ab BA# ",
  };
  for (const std::string& doc : docs) {
    ValidatedRun seq = runner.RunValidated(doc);
    ValidatedRun par = parallel.RunValidated(doc, 3);
    TagDfaMachine machine(&evaluator);
    StreamingSelector selector(
        &machine, StreamingSelector::Format::kCompactMarkup, &alphabet);
    bool fed = selector.Feed(doc);
    bool finished = fed && selector.Finish();
    EXPECT_EQ(seq, par) << doc;
    EXPECT_EQ(seq.ok(), finished) << doc;
    EXPECT_EQ(seq.error, selector.stream_error()) << doc;
    EXPECT_EQ(seq.events, selector.stats().events) << doc;
    EXPECT_EQ(seq.max_depth, selector.stats().max_depth) << doc;
    EXPECT_EQ(seq.matches, selector.matches()) << doc;
    EXPECT_EQ(seq.nodes, selector.nodes()) << doc;
  }
}

TEST(ParallelRunnerValidated, CleanRunsMatchTheUnvalidatedFastPath) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa query = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(query, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator);
  Rng rng(707);
  ThreadPool pool(4);
  ParallelTagDfaRunner parallel(&runner, &pool);
  for (const Tree& tree : testing::SampleTrees(15, 3, &rng)) {
    std::string doc = ToCompactMarkup(alphabet, Encode(tree));
    ValidatedRun run = parallel.RunValidated(doc, 7);
    ASSERT_TRUE(run.ok()) << run.error.Render(&alphabet);
    EXPECT_EQ(run.matches, runner.CountSelections(doc));
    EXPECT_EQ(run.final_state, runner.FinalState(doc));
  }
}

}  // namespace
}  // namespace sst
