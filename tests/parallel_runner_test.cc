#include "dra/parallel_runner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "dra/byte_runner.h"
#include "dra/tag_dfa.h"
#include "eval/registerless_query.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/generators.h"

namespace sst {
namespace {

constexpr int kChunkCounts[] = {1, 2, 3, 7, 16};
constexpr int kThreadCounts[] = {1, 2, 8};
constexpr int kDedupIntervals[] = {7, 256};

TagDfa RandomTagDfa(int num_states, int num_symbols, Rng* rng) {
  TagDfa dfa = TagDfa::Create(num_states, num_symbols);
  dfa.initial = static_cast<int>(rng->NextBelow(num_states));
  for (int q = 0; q < num_states; ++q) {
    dfa.accepting[q] = rng->NextBool(0.3);
    for (Symbol a = 0; a < num_symbols; ++a) {
      dfa.SetNextOpen(q, a, static_cast<int>(rng->NextBelow(num_states)));
      dfa.SetNextClose(q, a, static_cast<int>(rng->NextBelow(num_states)));
    }
  }
  return dfa;
}

// Asserts that the parallel runner reproduces the sequential final state
// and selection count for every chunk count × thread count × dedup
// interval combination.
void ExpectParallelMatchesSequential(const ByteTagDfaRunner& runner,
                                     const std::string& bytes) {
  int64_t expected_count = runner.CountSelections(bytes);
  int expected_state = runner.FinalState(bytes);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (int dedup : kDedupIntervals) {
      ParallelTagDfaRunner parallel(&runner, &pool, dedup);
      for (int chunks : kChunkCounts) {
        ParallelTagDfaRunner::Result result = parallel.Run(bytes, chunks);
        ASSERT_EQ(result.selections, expected_count)
            << "threads=" << threads << " chunks=" << chunks
            << " dedup=" << dedup << " len=" << bytes.size();
        ASSERT_EQ(result.final_state, expected_state)
            << "threads=" << threads << " chunks=" << chunks
            << " dedup=" << dedup << " len=" << bytes.size();
      }
    }
  }
}

TEST(ParallelRunner, MatchesSequentialOnRandomTrees) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa query = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(query, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator);
  Rng rng(101);
  for (const Tree& tree : testing::SampleTrees(30, 3, &rng)) {
    ExpectParallelMatchesSequential(
        runner, ToCompactMarkup(alphabet, Encode(tree)));
  }
}

TEST(ParallelRunner, MatchesSequentialOnRandomAutomata) {
  Rng rng(202);
  for (int round = 0; round < 20; ++round) {
    int num_states = 2 + static_cast<int>(rng.NextBelow(9));
    TagDfa dfa = RandomTagDfa(num_states, 3, &rng);
    ByteTagDfaRunner runner(dfa);
    int nodes = 1 + static_cast<int>(rng.NextBelow(800));
    Tree tree = RandomTree(nodes, 3, rng.NextDouble(), &rng);
    std::string bytes =
        ToCompactMarkup(Alphabet::FromLetters("abc"), Encode(tree));
    // Inject whitespace and junk: both self-loop in the fused table and
    // must not disturb speculative composition.
    std::string noisy;
    for (char c : bytes) {
      if (rng.NextBool(0.1)) noisy += ' ';
      if (rng.NextBool(0.02)) noisy += '~';
      noisy += c;
    }
    ExpectParallelMatchesSequential(runner, noisy);
  }
}

TEST(ParallelRunner, MatchesSequentialOnLargeDocument) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa query = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(query, /*blind=*/false);
  ByteTagDfaRunner runner(evaluator);
  Rng rng(303);
  Tree tree = RandomTree(20000, 3, 0.5, &rng);
  ExpectParallelMatchesSequential(runner,
                                  ToCompactMarkup(alphabet, Encode(tree)));
}

TEST(ParallelRunner, EdgeCaseInputs) {
  Rng rng(404);
  TagDfa dfa = RandomTagDfa(5, 2, &rng);
  ByteTagDfaRunner runner(dfa);
  ThreadPool pool(2);
  ParallelTagDfaRunner parallel(&runner, &pool);
  // Empty input: no chunks, initial state, zero selections.
  ParallelTagDfaRunner::Result empty = parallel.Run("", 8);
  EXPECT_EQ(empty.chunks, 0);
  EXPECT_EQ(empty.selections, 0);
  EXPECT_EQ(empty.final_state, runner.initial_state());
  // More chunks than bytes: clamps to one chunk per byte.
  ExpectParallelMatchesSequential(runner, "a");
  ExpectParallelMatchesSequential(runner, "abBA");
  // Null pool: chunks run inline, still speculatively.
  ParallelTagDfaRunner inline_runner(&runner, nullptr, 3);
  std::string bytes = "ababABABbaBAabAB";
  EXPECT_EQ(inline_runner.CountSelections(bytes, 5),
            runner.CountSelections(bytes));
  EXPECT_EQ(inline_runner.Accepts(bytes, 5), runner.Accepts(bytes));
}

// The wide (int32) table path: machines with >= 65536 states fall back to
// the uncompacted table and the speculative runner must dispatch to it.
TEST(ParallelRunner, WideTableMachineMatchesSequential) {
  const int n = 65600;
  TagDfa dfa = TagDfa::Create(n, 1);
  dfa.initial = 17;
  for (int q = 0; q < n; ++q) {
    dfa.accepting[q] = (q % 7) == 0;
    dfa.SetNextOpen(q, 0, (q * 5 + 1) % n);
    dfa.SetNextClose(q, 0, (q + 3) % n);
  }
  ByteTagDfaRunner runner(dfa);
  EXPECT_FALSE(runner.uses_compact_table());
  Rng rng(505);
  std::string bytes;
  for (int i = 0; i < 200; ++i) bytes += rng.NextBool() ? 'a' : 'A';
  ThreadPool pool(2);
  ParallelTagDfaRunner parallel(&runner, &pool, 16);
  ParallelTagDfaRunner::Result result = parallel.Run(bytes, 3);
  EXPECT_EQ(result.selections, runner.CountSelections(bytes));
  EXPECT_EQ(result.final_state, runner.FinalState(bytes));
}

}  // namespace
}  // namespace sst
