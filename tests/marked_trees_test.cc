#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "dra/machine.h"
#include "dra/tag_dfa.h"
#include "eval/stackless_query.h"
#include "test_util.h"
#include "treeauto/marked_trees.h"
#include "treeauto/rpqness.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

// The 'seen an a before (document order)' registerless DRA — realizes a
// query that is NOT a path query (Proposition 2.13's negative case).
Dra SeenADra() {
  TagDfa dfa = TagDfa::Create(2, 2);
  dfa.initial = 0;
  dfa.accepting = {false, true};
  dfa.SetNextOpen(0, 0, 1);
  dfa.SetNextOpen(0, 1, 0);
  for (Symbol s = 0; s < 2; ++s) {
    dfa.SetNextClose(0, s, 0);
    dfa.SetNextOpen(1, s, 1);
    dfa.SetNextClose(1, s, 1);
  }
  return DraFromTagDfa(dfa);
}

// Doubles labels into the marked alphabet: marked a-nodes get a + |Γ|.
Tree MarkTree(const Tree& tree, const std::vector<bool>& marks,
              int num_symbols) {
  Tree marked;
  for (int id = 0; id < tree.size(); ++id) {
    Symbol label = tree.label(id) + (marks[id] ? num_symbols : 0);
    if (id == 0) {
      marked.AddRoot(label);
    } else {
      marked.AddChild(tree.node(id).parent, label);
    }
  }
  return marked;
}

TEST(MarkedTrees, UnmarkedMaterializationMatchesDra) {
  // The generic hedge materialization agrees with the DRA on acceptance —
  // an independent validation of Proposition 2.3 via the hedge substrate.
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  std::optional<Dra> dra =
      MaterializeStacklessQueryDra(dfa, /*blind=*/false, 50000);
  ASSERT_TRUE(dra.has_value());
  std::optional<HedgeAutomaton> hedge =
      MaterializeDraHedgeAutomaton(*dra, /*marked=*/false, 100000);
  ASSERT_TRUE(hedge.has_value());
  DraRunner runner(&*dra);
  Rng rng(3);
  for (const Tree& tree : testing::SampleTrees(60, 2, &rng)) {
    ASSERT_EQ(HedgeAccepts(*hedge, tree),
              RunAcceptor(&runner, Encode(tree)));
  }
}

TEST(MarkedTrees, MarkedQueryAutomatonAcceptsExactlyCorrectMarkings) {
  Dra dra = SeenADra();
  std::optional<HedgeAutomaton> marked_query =
      MaterializeDraHedgeAutomaton(dra, /*marked=*/true, 100000);
  ASSERT_TRUE(marked_query.has_value());
  DraRunner runner(&dra);
  Rng rng(5);
  for (const Tree& tree : testing::SampleTrees(80, 2, &rng)) {
    std::vector<bool> marks = RunQueryOnTree(&runner, tree);
    // The correctly marked tree is accepted...
    EXPECT_TRUE(HedgeAccepts(*marked_query, MarkTree(tree, marks, 2)));
    // ...and flipping one mark is rejected.
    std::vector<bool> wrong = marks;
    wrong[static_cast<size_t>(rng.NextBelow(wrong.size()))].flip();
    EXPECT_FALSE(HedgeAccepts(*marked_query, MarkTree(tree, wrong, 2)));
  }
}

TEST(MarkedTrees, MarkedPathAutomatonMatchesSelectNodes) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*a", alphabet);
  HedgeAutomaton marked_path = MarkedPathAutomaton(dfa);
  Rng rng(7);
  for (const Tree& tree : testing::SampleTrees(80, 2, &rng)) {
    std::vector<bool> marks = SelectNodes(dfa, tree);
    EXPECT_TRUE(HedgeAccepts(marked_path, MarkTree(tree, marks, 2)));
    std::vector<bool> wrong = marks;
    wrong[static_cast<size_t>(rng.NextBelow(wrong.size()))].flip();
    EXPECT_FALSE(HedgeAccepts(marked_path, MarkTree(tree, wrong, 2)));
  }
}

TEST(Proposition213Exact, PathQueryConfirmed) {
  // A registerless DRA realizing the path query Q_{Γ*a} ('label is a').
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*a", alphabet);
  TagDfa evaluator = TagDfa::Create(dfa.num_states, 2);
  evaluator.initial = dfa.initial;
  for (int q = 0; q < dfa.num_states; ++q) {
    evaluator.accepting[q] = dfa.accepting[q];
    for (Symbol s = 0; s < 2; ++s) {
      // The query depends only on the node's own label, so the evaluator
      // may simply track the last opening tag.
      evaluator.SetNextOpen(q, s, dfa.Next(dfa.initial, s));
      evaluator.SetNextClose(q, s, dfa.Next(dfa.initial, s));
    }
  }
  // Fix the close transitions: after a closing tag the next opening tag
  // determines selection anyway; keep the state neutral.
  Dra dra = DraFromTagDfa(evaluator);
  std::optional<bool> is_rpq = IsRpqExact(dra, 4000);
  ASSERT_TRUE(is_rpq.has_value());
  EXPECT_TRUE(*is_rpq);
}

TEST(Proposition213Exact, NonPathQueryRefuted) {
  std::optional<bool> is_rpq = IsRpqExact(SeenADra(), 4000);
  ASSERT_TRUE(is_rpq.has_value());
  EXPECT_FALSE(*is_rpq);
}

TEST(Proposition213Exact, AgreesWithBoundedCheck) {
  Dra dra = SeenADra();
  std::optional<bool> exact = IsRpqExact(dra, 4000);
  ASSERT_TRUE(exact.has_value());
  RpqnessResult bounded = CheckRpqness(dra, 5);
  EXPECT_EQ(*exact, bounded.is_rpq_up_to_bound);
}

}  // namespace
}  // namespace sst
