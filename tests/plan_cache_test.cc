#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automata/alphabet.h"
#include "engine/plan_cache.h"
#include "engine/query_plan.h"

namespace sst {
namespace {

TEST(PlanCache, HitReturnsTheSamePlanPointer) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  PlanCache cache;
  auto first = cache.GetOrCompile(QuerySyntax::kXPath, "/a//b", alphabet,
                                  PlanOptions{});
  auto second = cache.GetOrCompile(QuerySyntax::kXPath, "/a//b", alphabet,
                                   PlanOptions{});
  EXPECT_EQ(first.get(), second.get());

  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.coalesced_misses, 0);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.size, 1);
}

TEST(PlanCache, WhitespaceDifferingQueriesShareOnePlan) {
  // Every supported syntax is whitespace-insensitive, so canonicalization
  // strips ASCII whitespace before keying.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  PlanCache cache;
  auto compact = cache.GetOrCompile(QuerySyntax::kRegex, "a.*b", alphabet,
                                    PlanOptions{});
  auto spaced = cache.GetOrCompile(QuerySyntax::kRegex, " a . * b\t", alphabet,
                                   PlanOptions{});
  EXPECT_EQ(compact.get(), spaced.get());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(PlanCache, DistinctOptionsAndSyntaxesDoNotCollide) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  PlanCache cache;
  PlanOptions markup;
  PlanOptions term;
  term.encoding = StreamEncoding::kTerm;
  term.format = StreamFormat::kCompactTerm;
  auto a = cache.GetOrCompile(QuerySyntax::kXPath, "/a//b", alphabet, markup);
  auto b = cache.GetOrCompile(QuerySyntax::kXPath, "/a//b", alphabet, term);
  auto c = cache.GetOrCompile(QuerySyntax::kJsonPath, "$.a..b", alphabet,
                              markup);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.stats().size, 3);
}

TEST(PlanCache, EvictsLeastRecentlyUsedAtCapacity) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  PlanCache::Options options;
  options.capacity = 2;
  options.num_shards = 1;  // single shard so capacity is exact
  PlanCache cache(options);

  auto plan_a = cache.GetOrCompile(QuerySyntax::kXPath, "/a", alphabet,
                                   PlanOptions{});
  cache.GetOrCompile(QuerySyntax::kXPath, "/b", alphabet, PlanOptions{});
  // Touch /a so /b becomes the LRU victim.
  cache.GetOrCompile(QuerySyntax::kXPath, "/a", alphabet, PlanOptions{});
  cache.GetOrCompile(QuerySyntax::kXPath, "/c", alphabet, PlanOptions{});

  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.size, 2);

  // /a survived (hit), /b was evicted (miss recompiles).
  auto again_a = cache.GetOrCompile(QuerySyntax::kXPath, "/a", alphabet,
                                    PlanOptions{});
  EXPECT_EQ(again_a.get(), plan_a.get());
  EXPECT_EQ(cache.stats().hits, 2);
  cache.GetOrCompile(QuerySyntax::kXPath, "/b", alphabet, PlanOptions{});
  EXPECT_EQ(cache.stats().misses, 4);

  // Eviction only drops the cache's reference: the evicted plan's holders
  // keep streaming over it (plan_a's use_count proves shared ownership).
  EXPECT_GE(plan_a.use_count(), 2);
}

TEST(PlanCache, ClearEmptiesAllShards) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  PlanCache cache;
  cache.GetOrCompile(QuerySyntax::kXPath, "/a", alphabet, PlanOptions{});
  cache.GetOrCompile(QuerySyntax::kXPath, "/b", alphabet, PlanOptions{});
  EXPECT_EQ(cache.stats().size, 2);
  cache.Clear();
  EXPECT_EQ(cache.stats().size, 0);
}

TEST(PlanCache, SingleFlightCoalescesConcurrentMisses) {
  // N threads request the same uncached key at once: exactly one thread
  // compiles, the rest block on its in-flight future. The compile hook
  // (invoked by the compiling thread outside the shard lock) holds the
  // compilation open until every other thread has registered as a
  // coalesced miss, making the assertion deterministic.
  constexpr int kThreads = 8;
  Alphabet alphabet = Alphabet::FromLetters("abc");
  PlanCache cache;
  std::atomic<int> compile_calls{0};
  cache.set_compile_hook_for_test([&] {
    compile_calls.fetch_add(1);
    while (cache.stats().coalesced_misses < kThreads - 1) {
      std::this_thread::yield();
    }
  });

  std::vector<std::shared_ptr<const QueryPlan>> plans(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      plans[i] = cache.GetOrCompile(QuerySyntax::kXPath, "/a//b", alphabet,
                                    PlanOptions{});
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(compile_calls.load(), 1);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(plans[i].get(), plans[0].get());
  }
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.coalesced_misses, kThreads - 1);
  EXPECT_EQ(stats.size, 1);
}

TEST(PlanCache, CanonicalKeySeparatesFields) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  std::string key = PlanCache::CanonicalKey(QuerySyntax::kXPath, " /a //b ",
                                            alphabet, PlanOptions{});
  EXPECT_NE(key.find("xpath\x1f/a//b\x1f"), std::string::npos);
  EXPECT_EQ(PlanCache::CanonicalizeQueryText(" /a //b "), "/a//b");
}

}  // namespace
}  // namespace sst
