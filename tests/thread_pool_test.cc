#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace sst {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.Run(257, [&hits](int i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    }
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.Run(16, [&sum](int i) { sum.fetch_add(i + 1); });
  }
  EXPECT_EQ(sum.load(), 50 * (16 * 17 / 2));
}

TEST(ThreadPool, HandlesDegenerateBatchSizes) {
  ThreadPool pool(3);
  int ran = 0;
  pool.Run(0, [&ran](int) { ++ran; });
  EXPECT_EQ(ran, 0);
  pool.Run(1, [&ran](int) { ++ran; });  // single task runs inline
  EXPECT_EQ(ran, 1);
  std::atomic<int> wide{0};
  pool.Run(1000, [&wide](int) { wide.fetch_add(1); });
  EXPECT_EQ(wide.load(), 1000);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

}  // namespace
}  // namespace sst
