#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "base/match_sink.h"
#include "base/rng.h"
#include "dra/byte_dra_runner.h"
#include "dra/byte_runner.h"
#include "dra/stream_error.h"
#include "dra/streaming.h"
#include "dra/tag_dfa.h"
#include "engine/multi_query.h"
#include "engine/query_plan.h"
#include "engine/session.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"
#include "query/rpq.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "test_util.h"
#include "testing/fault_injection.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

// The match-event pipeline, end to end: earliest-certain emission,
// byte-span offsets, and the two invariance guarantees of
// base/match_sink.h — the OnMatch and OnSpanClose sequences are identical
// under every chunking of the input and on every rung of the degradation
// ladder (fused byte table, fused DRA table, generic machine, stack
// baseline). Every test diffs whole CollectingSink logs, not counts.

// Hides the fused-tier exports so a selector built on it runs the generic
// machine tier — the cross-tier oracle.
class OpaqueMachine : public StreamMachine {
 public:
  explicit OpaqueMachine(StreamMachine* inner) : inner_(inner) {}
  void Reset() override { inner_->Reset(); }
  void OnOpen(Symbol symbol) override { inner_->OnOpen(symbol); }
  void OnClose(Symbol symbol) override { inner_->OnClose(symbol); }
  bool InAcceptingState() const override {
    return inner_->InAcceptingState();
  }

 private:
  StreamMachine* inner_;
};

// One run's complete observable output, for whole-log differential
// comparison.
struct EventLog {
  std::vector<MatchEvent> matches;
  std::vector<MatchEvent> spans;
  int64_t count = 0;
  bool finished = false;
  StreamErrorCode error_code = StreamErrorCode::kNone;
  int64_t error_offset = -1;

  friend bool operator==(const EventLog&, const EventLog&) = default;
};

EventLog Collect(StreamingSelector* selector, CollectingSink* sink,
                 const std::vector<std::string_view>& chunks) {
  sink->Reset();
  selector->set_match_sink(sink);
  selector->Reset();
  bool ok = true;
  for (std::string_view chunk : chunks) {
    if (!selector->Feed(chunk)) {
      ok = false;
      break;
    }
  }
  EventLog log;
  log.finished = ok && selector->Finish();
  log.matches = sink->matches();
  log.spans = sink->spans();
  log.count = selector->matches();
  log.error_code = selector->stream_error().code;
  log.error_offset = selector->stream_error().offset;
  return log;
}

std::vector<std::string_view> Chunked(std::string_view text, size_t chunk) {
  std::vector<std::string_view> chunks;
  for (size_t i = 0; i < text.size(); i += chunk) {
    chunks.push_back(text.substr(i, chunk));
  }
  return chunks;
}

EventLog CollectChunked(StreamingSelector* selector, CollectingSink* sink,
                        std::string_view text, size_t chunk) {
  return Collect(selector, sink, Chunked(text, chunk));
}

constexpr size_t kChunkings[] = {1, 3, 16, 65536};

std::shared_ptr<const QueryPlan> CompileXPath(const std::string& xpath,
                                              const Alphabet& alphabet,
                                              PlanOptions options = {}) {
  return QueryPlan::Compile(Rpq::FromXPath(xpath, alphabet), options);
}

// Stackless queries over {a, b, c} whose plans carry the fused DRA rung
// (filtered by verdict, like stackless_fused_test).
std::vector<std::string> StacklessFusedXPaths(const Alphabet& alphabet) {
  std::vector<std::string> xpaths;
  for (const char* xpath : {"/a/b", "/b/*//c", "/a/b//c", "/c/a"}) {
    auto plan = CompileXPath(xpath, alphabet);
    if (plan->kind() == EvaluatorKind::kStackless &&
        plan->fused_dra() != nullptr) {
      xpaths.push_back(xpath);
    }
  }
  return xpaths;
}

// --- Hand-computed offsets, one per byte format --------------------------

// Select-all over "aabBAbBA" = a( a(b), b ): verdicts at the byte after
// each opening letter, ends at the byte after each closing letter.
TEST(MatchEvents, HandComputedSpansCompactMarkup) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine, StreamFormat::kCompactMarkup,
                             &alphabet);
  CollectingSink sink;
  EventLog log = CollectChunked(&selector, &sink, "aabBAbBA", 1);
  ASSERT_TRUE(log.finished);
  EXPECT_EQ(log.matches, (std::vector<MatchEvent>{
                             {0, 0, -1, 1},
                             {0, 1, -1, 2},
                             {0, 2, -1, 3},
                             {0, 5, -1, 6},
                         }));
  // Close order: inner-first.
  EXPECT_EQ(log.spans, (std::vector<MatchEvent>{
                           {0, 2, 4, 3},
                           {0, 1, 5, 2},
                           {0, 5, 7, 6},
                           {0, 0, 8, 1},
                       }));
}

// XML-lite: start at '<', certainty just past the opening tag's '>', end
// just past the closing tag's '>'.
TEST(MatchEvents, HandComputedSpansXmlLite) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine, StreamFormat::kXmlLite, &alphabet);
  CollectingSink sink;
  EventLog log = CollectChunked(&selector, &sink, "<a><b></b></a>", 1);
  ASSERT_TRUE(log.finished);
  EXPECT_EQ(log.matches, (std::vector<MatchEvent>{
                             {0, 0, -1, 3},
                             {0, 3, -1, 6},
                         }));
  EXPECT_EQ(log.spans, (std::vector<MatchEvent>{
                           {0, 3, 10, 6},
                           {0, 0, 14, 3},
                       }));
}

// Term encoding: start at the label byte, certainty just past its '{',
// end just past the matching '}'.
TEST(MatchEvents, HandComputedSpansCompactTerm) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/true);
  TagDfaMachine machine(&evaluator);
  StreamingSelector selector(&machine, StreamFormat::kCompactTerm, &alphabet);
  CollectingSink sink;
  EventLog log = CollectChunked(&selector, &sink, "a{b{}}", 1);
  ASSERT_TRUE(log.finished);
  EXPECT_EQ(log.matches, (std::vector<MatchEvent>{
                             {0, 0, -1, 2},
                             {0, 2, -1, 4},
                         }));
  EXPECT_EQ(log.spans, (std::vector<MatchEvent>{
                           {0, 2, 5, 4},
                           {0, 0, 6, 2},
                       }));
}

// --- Earliest emission ----------------------------------------------------

// The tentpole property: an event with certainty_offset c is emitted by
// the time c bytes have been consumed, and never earlier — feeding any
// prefix of length k produces exactly the events with certainty <= k.
TEST(MatchEvents, PrefixOfLengthKEmitsExactlyEventsCertainByK) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  Rng rng(17);
  for (const Tree& tree : testing::SampleTrees(8, 3, &rng)) {
    std::string text = ToCompactMarkup(alphabet, Encode(tree));
    TagDfaMachine machine(&evaluator);
    StreamingSelector selector(&machine, StreamFormat::kCompactMarkup,
                               &alphabet);
    CollectingSink sink;
    EventLog full = CollectChunked(&selector, &sink, text, text.size());
    ASSERT_TRUE(full.finished);
    for (size_t k = 0; k <= text.size(); ++k) {
      sink.Reset();
      selector.set_match_sink(&sink);
      selector.Reset();
      ASSERT_TRUE(selector.Feed(std::string_view(text).substr(0, k)));
      std::vector<MatchEvent> expected;
      for (const MatchEvent& event : full.matches) {
        if (event.certainty_offset <= static_cast<int64_t>(k)) {
          expected.push_back(event);
        }
      }
      EXPECT_EQ(sink.matches(), expected) << "prefix " << k << " of " << text;
    }
  }
}

// Suffix perturbation: replacing everything after an event's certainty
// offset with junk cannot retract the event — the verdicts stay, and the
// spans still pending at the error are reported truncated, not dropped.
TEST(MatchEvents, JunkSuffixKeepsVerdictsAndTruncatesPendingSpans) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  Rng rng(29);
  for (const Tree& tree : testing::SampleTrees(12, 3, &rng)) {
    std::string text = ToCompactMarkup(alphabet, Encode(tree));
    TagDfaMachine machine(&evaluator);
    StreamingSelector selector(&machine, StreamFormat::kCompactMarkup,
                               &alphabet);
    CollectingSink sink;
    EventLog full = CollectChunked(&selector, &sink, text, text.size());
    ASSERT_TRUE(full.finished);
    if (full.matches.empty()) continue;
    const int64_t cut = full.matches.back().certainty_offset;

    sink.Reset();
    selector.set_match_sink(&sink);
    selector.Reset();
    ASSERT_TRUE(selector.Feed(
        std::string_view(text).substr(0, static_cast<size_t>(cut))));
    EXPECT_EQ(sink.matches(), full.matches);
    EXPECT_FALSE(selector.Feed("?"));
    EXPECT_EQ(selector.stream_error().offset, cut);
    // No retraction, and every emitted verdict has a span record: closed
    // ones from the clean prefix, truncated (end -1) ones flushed at the
    // error.
    EXPECT_EQ(sink.matches(), full.matches);
    EXPECT_EQ(sink.spans().size(), sink.matches().size());
    bool saw_truncated = false;
    for (const MatchEvent& span : sink.spans()) {
      saw_truncated |= span.end_offset == -1;
    }
    EXPECT_TRUE(saw_truncated);  // the last match's span was still open
  }
}

// --- Chunking x tier invariance ------------------------------------------

// True when the registerless construction evaluates `dfa` exactly on the
// sample (not every language is registerless-evaluable — the cross-tier
// diff only makes sense for the ones that are).
bool RegisterlessParityHolds(const Dfa& dfa, const TagDfa& evaluator,
                             const std::vector<Tree>& trees,
                             bool term_encoded) {
  for (const Tree& tree : trees) {
    TagDfaMachine machine(&evaluator);
    if (RunQueryOnTree(&machine, tree, term_encoded) !=
        SelectNodes(dfa, tree)) {
      return false;
    }
  }
  return true;
}

// Every chunking and every tier produces the identical log. Markup runs
// the fused byte table, the generic machine (exports hidden), and the
// stack baseline; xml-lite runs generic + stack; term runs the generic
// blind machine. The stack-tier whole-input run is the baseline log.
TEST(MatchEvents, LogsInvariantAcrossChunkingsAndTiers) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(83);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);
  int usable = 0;
  for (const char* regex : {"a.*b", "a*", ".*"}) {
    Dfa dfa = CompileRegex(regex, alphabet);
    TagDfa labeled = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
    TagDfa blind = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/true);
    // Queries outside the registerless class would make the stack baseline
    // and the TagDfa tiers legitimately disagree; skip those.
    if (!RegisterlessParityHolds(dfa, labeled, trees, false) ||
        !RegisterlessParityHolds(dfa, blind, trees, true)) {
      continue;
    }
    ++usable;
    for (const Tree& tree : trees) {
      EventStream events = Encode(tree);

      // Compact markup: stack baseline vs generic vs fused byte table.
      {
        std::string text = ToCompactMarkup(alphabet, events);
        Dfa stack_dfa = dfa;
        StackQueryEvaluator stack_machine(&stack_dfa);
        StreamingSelector stack_selector(
            &stack_machine, StreamFormat::kCompactMarkup, &alphabet);
        CollectingSink sink;
        EventLog baseline =
            CollectChunked(&stack_selector, &sink, text, text.size());
        ASSERT_TRUE(baseline.finished) << regex << " " << text;
        EXPECT_EQ(baseline.matches.size(), baseline.spans.size());
        EXPECT_EQ(static_cast<int64_t>(baseline.matches.size()),
                  baseline.count);

        TagDfaMachine fused_machine(&labeled);
        StreamingSelector fused_selector(
            &fused_machine, StreamFormat::kCompactMarkup, &alphabet);
        ASSERT_EQ(fused_selector.active_tier(),
                  StreamingSelector::Tier::kFusedByteTable);
        OpaqueMachine generic_machine(&fused_machine);
        StreamingSelector generic_selector(
            &generic_machine, StreamFormat::kCompactMarkup, &alphabet);
        ASSERT_EQ(generic_selector.active_tier(),
                  StreamingSelector::Tier::kGenericMachine);
        for (size_t chunk : kChunkings) {
          EXPECT_EQ(CollectChunked(&stack_selector, &sink, text, chunk),
                    baseline)
              << regex << " stack chunk=" << chunk;
          EXPECT_EQ(CollectChunked(&fused_selector, &sink, text, chunk),
                    baseline)
              << regex << " fused chunk=" << chunk;
          EXPECT_EQ(CollectChunked(&generic_selector, &sink, text, chunk),
                    baseline)
              << regex << " generic chunk=" << chunk;
        }
      }

      // XML-lite: stack baseline vs generic, all chunkings.
      {
        std::string text = ToXmlLite(alphabet, events);
        Dfa stack_dfa = dfa;
        StackQueryEvaluator stack_machine(&stack_dfa);
        StreamingSelector stack_selector(&stack_machine,
                                         StreamFormat::kXmlLite, &alphabet);
        CollectingSink sink;
        EventLog baseline =
            CollectChunked(&stack_selector, &sink, text, text.size());
        ASSERT_TRUE(baseline.finished);
        TagDfaMachine tag_machine(&labeled);
        StreamingSelector generic_selector(&tag_machine,
                                           StreamFormat::kXmlLite, &alphabet);
        for (size_t chunk : kChunkings) {
          EXPECT_EQ(CollectChunked(&stack_selector, &sink, text, chunk),
                    baseline)
              << regex << " xml stack chunk=" << chunk;
          EXPECT_EQ(CollectChunked(&generic_selector, &sink, text, chunk),
                    baseline)
              << regex << " xml generic chunk=" << chunk;
        }
      }

      // Term encoding: the blind machine, all chunkings against the
      // whole-input run.
      {
        std::string text = ToCompactTerm(alphabet, events);
        TagDfaMachine blind_machine(&blind);
        StreamingSelector selector(&blind_machine, StreamFormat::kCompactTerm,
                                   &alphabet);
        CollectingSink sink;
        EventLog baseline =
            CollectChunked(&selector, &sink, text, text.size());
        ASSERT_TRUE(baseline.finished);
        for (size_t chunk : kChunkings) {
          EXPECT_EQ(CollectChunked(&selector, &sink, text, chunk), baseline)
              << regex << " term chunk=" << chunk;
        }
      }
    }
  }
  EXPECT_GE(usable, 2);
}

// The fused DRA rung (stackless tier): a Session on the fused plan vs the
// same plan's machine with exports hidden (generic tier), every chunking.
TEST(MatchEvents, FusedDraTierMatchesGenericTier) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::string> xpaths = StacklessFusedXPaths(alphabet);
  ASSERT_GE(xpaths.size(), 2u);
  Rng rng(59);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);
  for (const std::string& xpath : xpaths) {
    auto plan = CompileXPath(xpath, alphabet);
    Session session(plan);
    ASSERT_EQ(session.selector().active_tier(),
              StreamingSelector::Tier::kFusedDraTable);
    std::unique_ptr<StreamMachine> inner = plan->NewMachine();
    OpaqueMachine opaque(inner.get());
    StreamingSelector generic(&opaque, StreamFormat::kCompactMarkup,
                              &alphabet);
    ASSERT_EQ(generic.active_tier(),
              StreamingSelector::Tier::kGenericMachine);
    CollectingSink sink;
    for (const Tree& tree : trees) {
      std::string text = ToCompactMarkup(alphabet, Encode(tree));
      EventLog baseline = CollectChunked(&generic, &sink, text, text.size());
      ASSERT_TRUE(baseline.finished) << xpath;
      for (size_t chunk : kChunkings) {
        EXPECT_EQ(CollectChunked(&generic, &sink, text, chunk), baseline)
            << xpath << " generic chunk=" << chunk;
        EXPECT_EQ(
            CollectChunked(&session.selector(), &sink, text, chunk), baseline)
            << xpath << " fused-dra chunk=" << chunk;
      }
    }
  }
}

// --- Faults, recovery, demotion ------------------------------------------

// Installing a sink must not perturb error detection: the first
// StreamError (code + offset) of every mutated document is identical with
// and without a sink, the logs are identical under every chunking, and no
// emitted verdict ever loses its span record (truncated, not dropped).
TEST(MatchEvents, FaultedStreamsKeepErrorOffsetsAndTruncateSpans) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  Rng rng(7);
  std::vector<Tree> trees = testing::SampleTrees(10, 3, &rng);
  for (int kind_index = 0; kind_index < kNumFaultKinds; ++kind_index) {
    const FaultKind kind = static_cast<FaultKind>(kind_index);
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      for (const Tree& tree : trees) {
        std::string doc = ToCompactMarkup(alphabet, Encode(tree));
        FaultInjector injector(seed);
        FaultReport report = injector.Apply(kind, &doc);
        if (!report.changed) continue;

        TagDfaMachine machine(&evaluator);
        StreamingSelector selector(&machine, StreamFormat::kCompactMarkup,
                                   &alphabet);
        // Reference: no sink installed.
        selector.Reset();
        bool plain_ok = selector.Feed(doc);
        if (plain_ok) plain_ok = selector.Finish();
        const StreamErrorCode plain_code = selector.stream_error().code;
        const int64_t plain_offset = selector.stream_error().offset;

        CollectingSink sink;
        EventLog baseline = CollectChunked(&selector, &sink, doc, doc.size());
        EXPECT_EQ(baseline.finished, plain_ok)
            << FaultKindName(kind) << " seed=" << seed;
        EXPECT_EQ(baseline.error_code, plain_code);
        EXPECT_EQ(baseline.error_offset, plain_offset);
        EXPECT_EQ(baseline.matches.size(), baseline.spans.size())
            << FaultKindName(kind) << ": a verdict lost its span";
        for (size_t chunk : kChunkings) {
          EXPECT_EQ(CollectChunked(&selector, &sink, doc, chunk), baseline)
              << FaultKindName(kind) << " seed=" << seed
              << " chunk=" << chunk;
        }
        selector.set_match_sink(nullptr);
      }
    }
  }
}

// Mid-chunk demotion: under kSkipMalformedSubtree a fused-tier selector
// drops to the generic machine at the first error and continues — the
// event log must equal the always-generic run, under every chunking
// (including chunk sizes that put the error mid-chunk).
TEST(MatchEvents, DemotionMidChunkPreservesEventLog) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  Rng rng(101);
  std::vector<Tree> trees = testing::SampleTrees(12, 3, &rng);
  const FaultKind kinds[] = {FaultKind::kFlipByte, FaultKind::kInjectJunk,
                             FaultKind::kUnbalanceClose};
  for (const FaultKind kind : kinds) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      for (const Tree& tree : trees) {
        std::string doc = ToCompactMarkup(alphabet, Encode(tree));
        FaultInjector injector(seed);
        if (!injector.Apply(kind, &doc).changed) continue;

        TagDfaMachine fused_machine(&evaluator);
        StreamingSelector fused_selector(
            &fused_machine, StreamFormat::kCompactMarkup, &alphabet);
        fused_selector.set_recovery_policy(
            RecoveryPolicy::kSkipMalformedSubtree);
        ASSERT_TRUE(fused_selector.using_fused_fast_path());

        TagDfaMachine generic_inner(&evaluator);
        OpaqueMachine generic_machine(&generic_inner);
        StreamingSelector generic_selector(
            &generic_machine, StreamFormat::kCompactMarkup, &alphabet);
        generic_selector.set_recovery_policy(
            RecoveryPolicy::kSkipMalformedSubtree);

        CollectingSink sink;
        EventLog baseline =
            CollectChunked(&generic_selector, &sink, doc, doc.size());
        for (size_t chunk : kChunkings) {
          EXPECT_EQ(CollectChunked(&generic_selector, &sink, doc, chunk),
                    baseline)
              << FaultKindName(kind) << " generic chunk=" << chunk;
          EXPECT_EQ(CollectChunked(&fused_selector, &sink, doc, chunk),
                    baseline)
              << FaultKindName(kind) << " demoted chunk=" << chunk;
        }
      }
    }
  }
}

// kAutoClose: spans left open at EOF complete at the EOF offset (the
// synthesized closes), inner-first — not truncated.
TEST(MatchEvents, AutoCloseCompletesSpansAtEof) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine, StreamFormat::kCompactMarkup,
                             &alphabet);
  selector.set_recovery_policy(RecoveryPolicy::kAutoClose);
  CollectingSink sink;
  selector.set_match_sink(&sink);
  ASSERT_TRUE(selector.Feed("aab"));  // three opens, no closes
  ASSERT_TRUE(selector.Finish());
  EXPECT_EQ(sink.matches(), (std::vector<MatchEvent>{
                                {0, 0, -1, 1},
                                {0, 1, -1, 2},
                                {0, 2, -1, 3},
                            }));
  EXPECT_EQ(sink.spans(), (std::vector<MatchEvent>{
                              {0, 2, 3, 3},
                              {0, 1, 3, 2},
                              {0, 0, 3, 1},
                          }));
}

// --- Bounded emission buffer ----------------------------------------------

TEST(MatchEvents, StreamLimitsValidateAndMergePendingMatches) {
  StreamLimits limits;
  EXPECT_EQ(limits.Validate(), nullptr);
  limits.max_pending_matches = 0;
  EXPECT_NE(limits.Validate(), nullptr);
  limits.max_pending_matches = 8;
  EXPECT_EQ(limits.Validate(), nullptr);

  StreamLimits other;
  other.max_pending_matches = 3;
  EXPECT_EQ(StreamLimits::Merged(limits, other).max_pending_matches, 3);
  EXPECT_EQ(StreamLimits::Merged(other, limits).max_pending_matches, 3);
}

// Overflow is deterministic and chunking-invariant: beyond the bound,
// verdicts still fire at their certain offsets but their spans close
// immediately as truncated; spans within the bound resolve normally.
TEST(MatchEvents, PendingOverflowTruncatesDeterministically) {
  Alphabet alphabet = Alphabet::FromLetters("a");
  Dfa dfa = CompileRegex(".*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine, StreamFormat::kCompactMarkup,
                             &alphabet);
  StreamLimits limits;
  limits.max_pending_matches = 2;
  selector.set_limits(limits);

  const std::string doc = "aaaaaaaaAAAAAAAA";  // depth 8, all selected
  CollectingSink sink;
  EventLog baseline = CollectChunked(&selector, &sink, doc, doc.size());
  ASSERT_TRUE(baseline.finished);
  ASSERT_EQ(baseline.matches.size(), 8u);
  ASSERT_EQ(baseline.spans.size(), 8u);
  // Matches 3..8 overflow: truncated immediately, in emission order.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(baseline.spans[static_cast<size_t>(i)],
              (MatchEvent{0, 2 + i, -1, 3 + i}));
  }
  // The two buffered spans resolve at their real closes, inner-first.
  EXPECT_EQ(baseline.spans[6], (MatchEvent{0, 1, 15, 2}));
  EXPECT_EQ(baseline.spans[7], (MatchEvent{0, 0, 16, 1}));
  EXPECT_EQ(selector.match_recorder().overflowed(), 6);
  EXPECT_EQ(selector.match_recorder().peak_pending(), 2);
  EXPECT_EQ(selector.stats().pending_matches_peak, 2);
  EXPECT_EQ(selector.stats().matches_emitted, 8);

  for (size_t chunk : kChunkings) {
    EXPECT_EQ(CollectChunked(&selector, &sink, doc, chunk), baseline)
        << "chunk=" << chunk;
  }
}

// --- Counting parity ------------------------------------------------------

// The parity anchor: a CountingSink reports exactly matches(), which is
// itself unchanged by installing a sink, and agrees with ground truth.
TEST(MatchEvents, CountingSinkMatchesLegacyCounts) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  Rng rng(41);
  for (const Tree& tree : testing::SampleTrees(25, 3, &rng)) {
    std::string text = ToCompactMarkup(alphabet, Encode(tree));
    int64_t expected = 0;
    for (bool b : SelectNodes(dfa, tree)) expected += b ? 1 : 0;

    TagDfaMachine machine(&evaluator);
    StreamingSelector selector(&machine, StreamFormat::kCompactMarkup,
                               &alphabet);
    // Without a sink first (the pre-refactor path)...
    selector.Reset();
    ASSERT_TRUE(selector.Feed(text));
    ASSERT_TRUE(selector.Finish());
    EXPECT_EQ(selector.matches(), expected);
    // ...then with a CountingSink: same total, byte-identical counts.
    CountingSink counting;
    selector.set_match_sink(&counting);
    selector.Reset();
    ASSERT_TRUE(selector.Feed(text));
    ASSERT_TRUE(selector.Finish());
    EXPECT_EQ(selector.matches(), expected);
    EXPECT_EQ(counting.total(), expected);
    EXPECT_EQ(counting.counts(), (std::vector<int64_t>{expected}));
  }
}

// --- Whole-document runner parity -----------------------------------------

// ByteTagDfaRunner::CollectMatches (structural-index walk) vs its per-byte
// oracle vs the streaming fused tier: identical logs, identical counts,
// count == CountSelections — with and without whitespace runs.
TEST(MatchEvents, ByteTagDfaRunnerCollectMatchesParity) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(67);
  std::vector<Tree> trees = testing::SampleTrees(25, 3, &rng);
  for (const char* regex : {"a.*b", ".*"}) {
    Dfa dfa = CompileRegex(regex, alphabet);
    TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
    ByteTagDfaRunner runner(evaluator, alphabet);
    TagDfaMachine machine(&evaluator);
    StreamingSelector selector(&machine, StreamFormat::kCompactMarkup,
                               &alphabet);
    ASSERT_TRUE(selector.using_fused_fast_path());
    CollectingSink sink;
    for (const Tree& tree : trees) {
      std::string text = ToCompactMarkup(alphabet, Encode(tree));
      // A whitespace-padded variant shifts every offset but must stay
      // internally consistent across all three paths.
      std::string padded;
      for (size_t i = 0; i < text.size(); ++i) {
        padded += text[i];
        if (i % 3 == 1) padded += "  \n";
      }
      for (const std::string& doc : {text, padded}) {
        CollectingSink indexed;
        CollectingSink per_byte;
        int64_t indexed_count = runner.CollectMatches(doc, &indexed);
        int64_t per_byte_count = runner.CollectMatchesPerByte(doc, &per_byte);
        EXPECT_EQ(indexed_count, per_byte_count) << regex;
        EXPECT_EQ(indexed_count, runner.CountSelections(doc)) << regex;
        EXPECT_EQ(indexed.matches(), per_byte.matches()) << regex;
        EXPECT_EQ(indexed.spans(), per_byte.spans()) << regex;

        EventLog streamed = CollectChunked(&selector, &sink, doc, 7);
        ASSERT_TRUE(streamed.finished) << regex;
        EXPECT_EQ(streamed.matches, indexed.matches()) << regex;
        EXPECT_EQ(streamed.spans, indexed.spans()) << regex;
        EXPECT_EQ(streamed.count, indexed_count) << regex;
      }
    }
  }
}

// Same triangle for the stackless fused rung (ByteDraRunner).
TEST(MatchEvents, ByteDraRunnerCollectMatchesParity) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::string> xpaths = StacklessFusedXPaths(alphabet);
  ASSERT_GE(xpaths.size(), 2u);
  Rng rng(73);
  std::vector<Tree> trees = testing::SampleTrees(25, 3, &rng);
  for (const std::string& xpath : xpaths) {
    auto plan = CompileXPath(xpath, alphabet);
    const ByteDraRunner* runner = plan->fused_dra();
    ASSERT_NE(runner, nullptr);
    Session session(plan);
    CollectingSink sink;
    for (const Tree& tree : trees) {
      std::string text = ToCompactMarkup(alphabet, Encode(tree));
      CollectingSink indexed;
      CollectingSink per_byte;
      int64_t indexed_count = runner->CollectMatches(text, &indexed);
      int64_t per_byte_count = runner->CollectMatchesPerByte(text, &per_byte);
      EXPECT_EQ(indexed_count, per_byte_count) << xpath;
      EXPECT_EQ(indexed_count, runner->CountSelections(text)) << xpath;
      EXPECT_EQ(indexed.matches(), per_byte.matches()) << xpath;
      EXPECT_EQ(indexed.spans(), per_byte.spans()) << xpath;

      EventLog streamed =
          CollectChunked(&session.selector(), &sink, text, 5);
      ASSERT_TRUE(streamed.finished) << xpath;
      EXPECT_EQ(streamed.matches, indexed.matches()) << xpath;
      EXPECT_EQ(streamed.spans, indexed.spans()) << xpath;
      EXPECT_EQ(streamed.count, indexed_count) << xpath;
    }
  }
}

// --- Batch fan-out --------------------------------------------------------

struct BatchLog {
  std::vector<MatchEvent> matches;
  std::vector<MatchEvent> spans;
  std::vector<int64_t> query_matches;
  bool finished = false;

  friend bool operator==(const BatchLog&, const BatchLog&) = default;
};

BatchLog RunBatch(BatchSession* session, CollectingSink* sink,
                  std::string_view text, size_t chunk) {
  sink->Reset();
  session->set_match_sink(sink);
  session->Reset();
  bool ok = true;
  for (size_t i = 0; i < text.size() && ok; i += chunk) {
    ok = session->Feed(text.substr(i, chunk));
  }
  BatchLog log;
  log.finished = ok && session->Finish();
  log.matches = sink->matches();
  log.spans = sink->spans();
  log.query_matches = session->query_matches();
  return log;
}

// Extracts one query's subsequence with the id normalized away, so the
// streams of two textual duplicates compare equal.
std::vector<MatchEvent> FilterQuery(const std::vector<MatchEvent>& events,
                                    int32_t query) {
  std::vector<MatchEvent> out;
  for (const MatchEvent& event : events) {
    if (event.query_id == query) {
      out.push_back(event);
      out.back().query_id = 0;
    }
  }
  return out;
}

std::vector<int64_t> CountPerQuery(const std::vector<MatchEvent>& matches,
                                   int num_queries) {
  std::vector<int64_t> counts(static_cast<size_t>(num_queries), 0);
  for (const MatchEvent& event : matches) {
    EXPECT_GE(event.query_id, 0);
    EXPECT_LT(event.query_id, num_queries);
    if (event.query_id >= 0 && event.query_id < num_queries) {
      ++counts[static_cast<size_t>(event.query_id)];
    }
  }
  return counts;
}

// Every batch tier: event query_ids are submission-order indices,
// duplicates fan out, and a CountingSink reproduces query_matches()
// exactly. Product tiers additionally guarantee whole-log chunking
// invariance; the independent tier guarantees it per query.
TEST(MatchEvents, BatchTiersFanOutToSubmissionOrderQueryIds) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::string> stackless = StacklessFusedXPaths(alphabet);
  ASSERT_GE(stackless.size(), 1u);

  struct TierCase {
    const char* name;
    std::vector<BatchQuery> queries;
    MultiQueryOptions options;
  };
  std::vector<TierCase> cases;
  const std::vector<BatchQuery> registerless = {
      {QuerySyntax::kXPath, "/a//b"},
      {QuerySyntax::kXPath, "//c"},
      {QuerySyntax::kXPath, "/a//b"},  // textual duplicate
  };
  cases.push_back({"product-default", registerless, {}});
  {
    MultiQueryOptions lazy;
    lazy.eager_state_cap = 1;
    cases.push_back({"lazy", registerless, lazy});
  }
  {
    std::vector<BatchQuery> mixed = registerless;
    mixed.push_back({QuerySyntax::kXPath, stackless[0]});
    cases.push_back({"mixed-default", mixed, {}});
    MultiQueryOptions independent;
    independent.eager_state_cap = 1;
    cases.push_back({"independent", mixed, independent});
  }

  Rng rng(97);
  std::vector<Tree> trees = testing::SampleTrees(15, 3, &rng);
  for (const TierCase& tier_case : cases) {
    auto plan = MultiQueryPlan::Compile(tier_case.queries, alphabet,
                                        tier_case.options);
    BatchSession session(plan);
    const bool product_tier = session.active_tier() != MultiTier::kIndependent;
    const int num_queries = plan->num_queries();
    CollectingSink sink;
    for (const Tree& tree : trees) {
      std::string text = ToCompactMarkup(alphabet, Encode(tree));
      BatchLog baseline = RunBatch(&session, &sink, text, text.size());
      ASSERT_TRUE(baseline.finished) << tier_case.name;
      EXPECT_EQ(baseline.matches.size(), baseline.spans.size())
          << tier_case.name;

      // CountingSink parity: per-query totals == query_matches(), with
      // duplicates reporting the same count under their own ids.
      EXPECT_EQ(CountPerQuery(baseline.matches, num_queries),
                baseline.query_matches)
          << tier_case.name;
      EXPECT_EQ(FilterQuery(baseline.matches, 0),
                FilterQuery(baseline.matches, 2))
          << tier_case.name << ": duplicate queries must fan out identically";

      for (size_t chunk : {size_t{1}, size_t{3}, size_t{16}}) {
        BatchLog rerun = RunBatch(&session, &sink, text, chunk);
        ASSERT_TRUE(rerun.finished) << tier_case.name;
        EXPECT_EQ(rerun.query_matches, baseline.query_matches)
            << tier_case.name;
        if (product_tier) {
          EXPECT_EQ(rerun, baseline)
              << tier_case.name << " chunk=" << chunk;
        } else {
          // Lockstep slots interleave per chunk; each query's subsequence
          // is still invariant.
          for (int q = 0; q < num_queries; ++q) {
            EXPECT_EQ(FilterQuery(rerun.matches, q),
                      FilterQuery(baseline.matches, q))
                << tier_case.name << " query=" << q << " chunk=" << chunk;
            EXPECT_EQ(FilterQuery(rerun.spans, q),
                      FilterQuery(baseline.spans, q))
                << tier_case.name << " query=" << q << " chunk=" << chunk;
          }
        }
      }
      session.set_match_sink(nullptr);
      // The sink must not have perturbed counting: a sink-free rerun
      // reports the same per-query counts.
      session.Reset();
      for (size_t i = 0; i < text.size(); i += 16) {
        ASSERT_TRUE(session.Feed(std::string_view(text).substr(i, 16)));
      }
      ASSERT_TRUE(session.Finish());
      EXPECT_EQ(session.query_matches(), baseline.query_matches)
          << tier_case.name;
    }
  }
}

// --- Wire codec and metrics ----------------------------------------------

TEST(MatchWire, EncodeParseRoundtrip) {
  std::vector<MatchWireRecord> records = {
      {false, {0, 0, -1, 1}},
      {false, {3, 128, -1, 130}},
      {true, {3, 128, 512, 130}},
      {true, {1, 7, -1, 9}},  // truncated span: end stays -1
  };
  std::vector<MatchWireRecord> decoded;
  ASSERT_TRUE(ParseMatches(EncodeMatches(records), &decoded));
  EXPECT_EQ(decoded, records);

  EXPECT_TRUE(ParseMatches("", &decoded));
  EXPECT_TRUE(decoded.empty());

  for (const char* bad : {"x 1 2 3\n", "m 1 2\n", "m 1 2 3 4\n",
                          "c 1 2 3\n", "c 1 2 3 4 5 6\n", "m 1 two 3\n"}) {
    EXPECT_FALSE(ParseMatches(bad, &decoded)) << bad;
  }
}

TEST(MatchWire, RegisterRoundtripCarriesMatchOptIn) {
  RegisterRequest request;
  request.alphabet = "abc";
  request.queries = {"/a//b", "//c"};
  request.matches = true;
  request.limits.max_pending_matches = 7;
  RegisterRequest decoded;
  std::string error;
  ASSERT_TRUE(ParseRegister(EncodeRegister(request), &decoded, &error))
      << error;
  EXPECT_TRUE(decoded.matches);
  EXPECT_EQ(decoded.limits.max_pending_matches, 7);
  EXPECT_EQ(decoded.queries, request.queries);

  // Off by default, and absent from the encoding when off.
  RegisterRequest plain;
  plain.alphabet = "abc";
  plain.queries = {"//c"};
  ASSERT_TRUE(ParseRegister(EncodeRegister(plain), &decoded, &error));
  EXPECT_FALSE(decoded.matches);
  EXPECT_EQ(decoded.limits.max_pending_matches, StreamLimits::kUnlimited);
}

TEST(MatchWire, BufferPreservesArrivalOrder) {
  MatchWireBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  buffer.OnMatch({0, 0, -1, 1});
  buffer.OnMatch({0, 1, -1, 2});
  buffer.OnSpanClose({0, 1, 3, 2});
  std::vector<MatchWireRecord> taken = buffer.Take();
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_FALSE(taken[0].close);
  EXPECT_FALSE(taken[1].close);
  EXPECT_TRUE(taken[2].close);
  EXPECT_EQ(taken[2].event.end_offset, 3);
  EXPECT_TRUE(buffer.empty());
}

TEST(MatchMetrics, RenderIncludesMatchCounters) {
  ServerStats stats;
  stats.matches_emitted = 42;
  stats.match_buffer_peak = 5;
  std::string text = RenderMetrics(stats);
  EXPECT_NE(text.find("server_matches_emitted 42"), std::string::npos)
      << text;
  EXPECT_NE(text.find("server_match_buffer_peak 5"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace sst
