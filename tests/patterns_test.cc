#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "base/check.h"
#include "base/rng.h"
#include "dra/machine.h"
#include "patterns/descendant_pattern.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/tree.h"

namespace sst {
namespace {

constexpr Symbol kA = 0, kB = 1, kC = 2;

Tree SingleNode(Symbol label) {
  Tree t;
  t.AddRoot(label);
  return t;
}

// a with a b-descendant (Example 2.6).
Tree PatternADescB() {
  Tree t;
  int root = t.AddRoot(kA);
  t.AddChild(root, kB);
  return t;
}

// Fig 1a: b with descendants {b', c}; b' with descendants {a, c}.
Tree PatternFig1a() {
  Tree t;
  int root = t.AddRoot(kB);
  int inner = t.AddChild(root, kB);
  t.AddChild(inner, kA);
  t.AddChild(inner, kC);
  t.AddChild(root, kC);
  return t;
}

Tree FromCompact(const char* text) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::optional<EventStream> events = ParseCompactMarkup(alphabet, text);
  SST_CHECK(events.has_value());
  std::optional<Tree> tree = Decode(*events);
  SST_CHECK(tree.has_value());
  return *tree;
}

TEST(ContainsPattern, SingleNodePatterns) {
  Tree tree = FromCompact("abaABcCA");  // a(b(a), c)
  EXPECT_TRUE(ContainsPattern(tree, SingleNode(kA)));
  EXPECT_TRUE(ContainsPattern(tree, SingleNode(kB)));
  EXPECT_TRUE(ContainsPattern(tree, SingleNode(kC)));
  Tree only_b = FromCompact("bB");
  EXPECT_FALSE(ContainsPattern(only_b, SingleNode(kA)));
}

TEST(ContainsPattern, DescendantSemanticsIsProper) {
  // a alone does not contain "a with an a-descendant".
  Tree pattern;
  int root = pattern.AddRoot(kA);
  pattern.AddChild(root, kA);
  EXPECT_FALSE(ContainsPattern(FromCompact("aA"), pattern));
  EXPECT_TRUE(ContainsPattern(FromCompact("aaAA"), pattern));
  EXPECT_TRUE(ContainsPattern(FromCompact("abaABA"), pattern));  // via b
}

TEST(ContainsPattern, BranchingPattern) {
  // a with both a b- and a c-descendant.
  Tree pattern;
  int root = pattern.AddRoot(kA);
  pattern.AddChild(root, kB);
  pattern.AddChild(root, kC);
  EXPECT_TRUE(ContainsPattern(FromCompact("abBcCA"), pattern));
  EXPECT_TRUE(ContainsPattern(FromCompact("abcCBA"), pattern));  // nested
  EXPECT_FALSE(ContainsPattern(FromCompact("abBbBA"), pattern));
  // The two pattern leaves may map into different subtrees of different
  // a-nodes only if some single a-node dominates both.
  EXPECT_FALSE(ContainsPattern(FromCompact("babBAacCAB"), pattern));
}

TEST(Matcher, AgreesWithGroundTruthOnExamples) {
  DescendantPatternMatcher matcher(PatternADescB());
  EXPECT_TRUE(RunAcceptor(&matcher, Encode(FromCompact("abBA"))));
  EXPECT_TRUE(RunAcceptor(&matcher, Encode(FromCompact("acbBCA"))));
  // b( a, c ): the a-node has no b-descendant.
  EXPECT_FALSE(RunAcceptor(&matcher, Encode(FromCompact("baAcCB"))));
}

TEST(Matcher, MinimalityTrickHandlesNestedCandidates) {
  // Example 2.7's hard shape: chains of a's where only a deep one has the
  // required b-child-like structure. Containment (descendant semantics)
  // remains monotone, so the matcher must accept.
  DescendantPatternMatcher matcher(PatternADescB());
  // a( a(c), a(b) ): the first candidate subtree a(c) fails; the matcher
  // must resume and find the b under the second a-child.
  EXPECT_TRUE(RunAcceptor(&matcher, Encode(FromCompact("aacCAabBAA"))));
  EXPECT_TRUE(RunAcceptor(&matcher, Encode(FromCompact("aaaabBAAAA"))));
  EXPECT_FALSE(RunAcceptor(&matcher, Encode(FromCompact("aaaacCAAAA"))));
}

TEST(Matcher, MatchesGroundTruthOnRandomTreesAndPatterns) {
  Rng rng(71);
  for (int trial = 0; trial < 40; ++trial) {
    // Random small pattern (2-5 nodes) over {a, b, c}.
    int pattern_size = 2 + static_cast<int>(rng.NextBelow(4));
    Tree pattern = RandomTree(pattern_size, 3, rng.NextDouble(), &rng);
    DescendantPatternMatcher matcher(pattern);
    int agree_positive = 0;
    for (const Tree& tree : testing::SampleTrees(60, 3, &rng)) {
      bool expected = ContainsPattern(tree, pattern);
      ASSERT_EQ(RunAcceptor(&matcher, Encode(tree)), expected);
      agree_positive += expected ? 1 : 0;
    }
    (void)agree_positive;
  }
}

TEST(Matcher, RegisterBudgetIsPatternSize) {
  Tree pattern = PatternFig1a();
  DescendantPatternMatcher matcher(pattern);
  EXPECT_EQ(matcher.num_registers(), pattern.size());
}

TEST(StrictContainment, Fig1Semantics) {
  Tree pattern = PatternFig1a();
  // Fig 1c-like tree: main branch of b's; an a hanging where needed and c's
  // as siblings below/above — build: b( b( a, b(c), ), c ) chain shape.
  // Simplest positive witness: b( b( a, c ), c ).
  EXPECT_TRUE(StrictlyContainsPattern(FromCompact("bbaAcCBcCB"), pattern));
  // Plain containment can hold where strict containment fails: fold the
  // a and the outer c under the inner b's subtree in nested fashion.
  Tree folded = FromCompact("bbaAccCCBB");  // b( b( a, c(c) ) )
  EXPECT_TRUE(ContainsPattern(folded, pattern));
  EXPECT_FALSE(StrictlyContainsPattern(folded, pattern));
}

TEST(StrictContainment, ImpliesContainment) {
  Rng rng(73);
  for (int trial = 0; trial < 30; ++trial) {
    int pattern_size = 2 + static_cast<int>(rng.NextBelow(3));
    Tree pattern = RandomTree(pattern_size, 3, rng.NextDouble(), &rng);
    for (const Tree& tree : testing::SampleTrees(20, 3, &rng)) {
      if (StrictlyContainsPattern(tree, pattern)) {
        EXPECT_TRUE(ContainsPattern(tree, pattern));
      }
    }
  }
}

}  // namespace
}  // namespace sst
