#include <gtest/gtest.h>

#include "base/rng.h"
#include "dra/machine.h"
#include "dra/visibly_counter.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/generators.h"

namespace sst {
namespace {

constexpr Symbol kA = 0;

// m-VCA rejecting trees that have an a-labelled node at depth >= 3.
VisiblyCounterAutomaton BuildShallowAChecker() {
  constexpr int kOk = 0, kBad = 1;
  VisiblyCounterAutomaton vca =
      VisiblyCounterAutomaton::Create(2, 2, /*threshold=*/3);
  vca.initial = kOk;
  vca.accepting = {true, false};
  for (int close = 0; close < 2; ++close) {
    for (Symbol s = 0; s < 2; ++s) {
      for (int d = 0; d <= 3; ++d) {
        bool deep_a = close == 0 && s == kA && d == 3;
        vca.SetNext(kOk, close != 0, s, d, deep_a ? kBad : kOk);
        vca.SetNext(kBad, close != 0, s, d, kBad);
      }
    }
  }
  return vca;
}

TEST(VisiblyCounter, ShallowACheckerMatchesOracle) {
  VisiblyCounterAutomaton vca = BuildShallowAChecker();
  VcaRunner runner(&vca);
  Rng rng(3);
  int accepted = 0, rejected = 0;
  for (const Tree& tree : testing::SampleTrees(300, 2, &rng)) {
    bool expected = true;
    for (int id = 0; id < tree.size(); ++id) {
      if (tree.label(id) == kA && tree.Depth(id) >= 3) expected = false;
    }
    ASSERT_EQ(RunAcceptor(&runner, Encode(tree)), expected);
    (expected ? accepted : rejected) += 1;
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

TEST(VisiblyCounter, EmbeddingIntoOffsetDraIsExact) {
  VisiblyCounterAutomaton vca = BuildShallowAChecker();
  OffsetDra embedded = VcaToOffsetDra(vca);
  VcaRunner direct(&vca);
  OffsetDraRunner offset_runner(&embedded);
  Rng rng(5);
  for (const Tree& tree : testing::SampleTrees(200, 2, &rng)) {
    EventStream events = Encode(tree);
    ASSERT_EQ(RunAcceptor(&offset_runner, events),
              RunAcceptor(&direct, events));
  }
}

TEST(VisiblyCounter, FullPipelineToPlainDra) {
  // m-VCA -> offset DRA -> plain Definition-2.1 DRA: all three agree.
  VisiblyCounterAutomaton vca = BuildShallowAChecker();
  OffsetDra embedded = VcaToOffsetDra(vca);
  std::optional<Dra> plain = CompileOffsetDra(embedded, 100000);
  ASSERT_TRUE(plain.has_value());
  VcaRunner direct(&vca);
  DraRunner compiled(&*plain);
  Rng rng(7);
  for (const Tree& tree : testing::SampleTrees(200, 2, &rng)) {
    EventStream events = Encode(tree);
    ASSERT_EQ(RunAcceptor(&compiled, events), RunAcceptor(&direct, events));
  }
}

TEST(VisiblyCounter, RandomVcasAgreeWithTheirEmbeddings) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    int threshold = static_cast<int>(rng.NextBelow(4));
    VisiblyCounterAutomaton vca =
        VisiblyCounterAutomaton::Create(3, 2, threshold);
    vca.initial = 0;
    for (int q = 0; q < 3; ++q) vca.accepting[q] = rng.NextBool(0.5);
    for (size_t i = 0; i < vca.next.size(); ++i) {
      vca.next[i] = static_cast<int>(rng.NextBelow(3));
    }
    OffsetDra embedded = VcaToOffsetDra(vca);
    VcaRunner direct(&vca);
    OffsetDraRunner offset_runner(&embedded);
    for (const Tree& tree : testing::SampleTrees(30, 2, &rng)) {
      EventStream events = Encode(tree);
      ASSERT_EQ(RunAcceptor(&offset_runner, events),
                RunAcceptor(&direct, events))
          << trial;
      ASSERT_EQ(RunQueryOnTree(&offset_runner, tree),
                RunQueryOnTree(&direct, tree))
          << trial;
    }
  }
}

}  // namespace
}  // namespace sst
