#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automata/alphabet.h"
#include "base/rng.h"
#include "dra/stream_error.h"
#include "engine/plan_cache.h"
#include "engine/query_plan.h"
#include "engine/session.h"
#include "query/rpq.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

// Everything a streaming run can observe, for byte-for-byte comparison of
// concurrent sessions against a sequential reference.
struct RunRecord {
  bool ok = false;
  int64_t matches = 0;
  int64_t events = 0;
  int64_t max_depth = 0;
  int64_t bytes_fed = 0;
  StreamErrorCode error_code = StreamErrorCode::kNone;
  int64_t error_offset = -1;

  friend bool operator==(const RunRecord&, const RunRecord&) = default;
};

RunRecord Drive(Session* session, const std::string& text,
                size_t chunk_size) {
  session->Reset();
  RunRecord record;
  record.ok = true;
  for (size_t i = 0; i < text.size() && record.ok; i += chunk_size) {
    record.ok = session->Feed(std::string_view(text).substr(i, chunk_size));
  }
  if (record.ok) record.ok = session->Finish();
  StreamStats stats = session->stats();
  record.matches = session->matches();
  record.events = stats.events;
  record.max_depth = stats.max_depth;
  record.bytes_fed = stats.bytes_fed;
  record.error_code = session->stream_error().code;
  record.error_offset = session->stream_error().offset;
  return record;
}

// Acceptance criterion: one plan shared by 8 concurrent sessions, each
// replaying the document set at its own chunk size, must produce results
// byte-identical to 8 sequential runs. Includes a malformed document so
// the error path is exercised under sharing too.
TEST(EngineConcurrency, EightSessionsOverOnePlanMatchSequentialRuns) {
  constexpr int kThreads = 8;
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rpq rpq = Rpq::FromXPath("/a//b", alphabet);
  auto plan = QueryPlan::Compile(rpq, PlanOptions{});

  Rng rng(21);
  std::vector<std::string> documents;
  for (const Tree& tree : testing::SampleTrees(30, 3, &rng)) {
    documents.push_back(ToCompactMarkup(alphabet, Encode(tree)));
  }
  documents.push_back("abBAabA");   // unclosed element
  documents.push_back("abXBA");     // mismatched close label
  documents.push_back("a}bBA");     // byte illegal in compact markup

  // Thread t re-splits every document into chunks of size t + 1, so the
  // concurrent runs disagree on every Feed boundary yet must agree on
  // every observable outcome.
  std::vector<std::vector<RunRecord>> sequential(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Session session(plan);
    for (const std::string& doc : documents) {
      sequential[t].push_back(
          Drive(&session, doc, static_cast<size_t>(t) + 1));
    }
  }

  std::vector<std::vector<RunRecord>> concurrent(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session(plan);
      for (const std::string& doc : documents) {
        concurrent[t].push_back(
            Drive(&session, doc, static_cast<size_t>(t) + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(concurrent[t].size(), sequential[t].size());
    for (size_t d = 0; d < documents.size(); ++d) {
      EXPECT_EQ(concurrent[t][d], sequential[t][d])
          << "thread " << t << ", document " << d;
    }
  }
}

TEST(EngineConcurrency, PooledSessionsAcrossThreadsStayConsistent) {
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 25;
  Alphabet alphabet = Alphabet::FromLetters("ab");
  auto plan = QueryPlan::Compile(Rpq::FromXPath("/a//b", alphabet),
                                 PlanOptions{});
  SessionPool pool(plan, /*max_idle=*/kThreads);

  const std::string doc = "abBabBAbBA";  // a(b, a(b), b): 3 matches
  Session reference(plan);
  RunRecord expected = Drive(&reference, doc, doc.size());
  ASSERT_TRUE(expected.ok);

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        SessionLease lease = Lease(pool);
        RunRecord record = Drive(&*lease, doc, static_cast<size_t>(i) + 1);
        if (!(record == expected)) ++mismatches[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
  SessionPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.created + stats.reused,
            static_cast<int64_t>(kThreads) * kRequestsPerThread);
}

TEST(EngineConcurrency, PlanCacheServesManyThreadsManyQueries) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  Alphabet alphabet = Alphabet::FromLetters("abc");
  const std::vector<std::string> queries = {"/a//b", "/a/b", "//a/b",
                                            "/b//c"};
  PlanCache cache;

  std::vector<std::vector<const QueryPlan*>> seen(
      kThreads, std::vector<const QueryPlan*>(queries.size(), nullptr));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < queries.size(); ++q) {
          auto plan = cache.GetOrCompile(QuerySyntax::kXPath, queries[q],
                                         alphabet, PlanOptions{});
          if (seen[t][q] == nullptr) seen[t][q] = plan.get();
          // Every lookup of the same query must return the same plan.
          ASSERT_EQ(plan.get(), seen[t][q]);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // All threads resolved each query to one shared plan.
  for (int t = 1; t < kThreads; ++t) {
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(seen[t][q], seen[0][q]);
    }
  }
  PlanCache::Stats stats = cache.stats();
  // Exactly one compilation per distinct query; everything else hit or
  // coalesced.
  EXPECT_EQ(stats.misses, static_cast<int64_t>(queries.size()));
  EXPECT_EQ(stats.hits + stats.coalesced_misses,
            static_cast<int64_t>(kThreads) * kRounds *
                    static_cast<int64_t>(queries.size()) -
                stats.misses);
  EXPECT_EQ(stats.size, static_cast<int64_t>(queries.size()));
}

}  // namespace
}  // namespace sst
