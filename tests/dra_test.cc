#include <set>

#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "base/rng.h"
#include "dra/dra.h"
#include "dra/machine.h"
#include "dra/tag_dfa.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/tree.h"

namespace sst {
namespace {

// Example 2.2: the set of trees over {a, b} in which all a-labelled nodes
// are at the same depth — a stackless but non-regular tree language. One
// register: the first a stores the current depth; later a's must open at a
// depth equal to the stored value.
Dra BuildExample22() {
  constexpr Symbol kA = 0, kB = 1;
  constexpr int kNoA = 0, kSeenA = 1, kReject = 2;
  Dra dra = Dra::Create(3, 2, 1);
  dra.initial = kNoA;
  dra.accepting = {true, true, false};
  // kNoA: first a loads the register; everything else idles.
  dra.SetAction(kNoA, false, kA, {-1}, /*load_mask=*/1, kSeenA);
  dra.SetAction(kNoA, false, kB, {-1}, 0, kNoA);
  dra.SetAction(kNoA, true, kA, {-1}, 0, kNoA);
  dra.SetAction(kNoA, true, kB, {-1}, 0, kNoA);
  // kSeenA: an opening a at a different depth rejects.
  dra.SetAction(kSeenA, false, kA, {Dra::kEqual}, 0, kSeenA);
  dra.SetAction(kSeenA, false, kA, {Dra::kLess}, 0, kReject);
  dra.SetAction(kSeenA, false, kA, {Dra::kGreater}, 0, kReject);
  dra.SetAction(kSeenA, false, kB, {-1}, 0, kSeenA);
  dra.SetAction(kSeenA, true, kA, {-1}, 0, kSeenA);
  dra.SetAction(kSeenA, true, kB, {-1}, 0, kSeenA);
  // kReject: sink.
  for (Symbol s = 0; s < 2; ++s) {
    dra.SetAction(kReject, false, s, {-1}, 0, kReject);
    dra.SetAction(kReject, true, s, {-1}, 0, kReject);
  }
  return dra;
}

bool AllAsAtSameDepth(const Tree& tree) {
  std::set<int> depths;
  for (int id = 0; id < tree.size(); ++id) {
    if (tree.label(id) == 0) depths.insert(tree.Depth(id));
  }
  return depths.size() <= 1;
}

TEST(Dra, Example22RecognizesItsLanguage) {
  Dra dra = BuildExample22();
  DraRunner runner(&dra);
  Rng rng(19);
  int accepted = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Tree tree = RandomTree(1 + static_cast<int>(rng.NextBelow(25)), 2,
                           rng.NextDouble(), &rng);
    bool result = RunAcceptor(&runner, Encode(tree));
    EXPECT_EQ(result, AllAsAtSameDepth(tree));
    (result ? accepted : rejected) += 1;
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

TEST(Dra, Example22IsNotRestrictedButItsLanguageIsNotRegularEither) {
  // Example 2.2 defines a non-regular tree language, so by Proposition 2.3
  // its automaton cannot be restricted.
  EXPECT_FALSE(IsRestricted(BuildExample22()));
}

TEST(Dra, RunnerTracksDepthAndRegisters) {
  Dra dra = BuildExample22();
  DraRunner runner(&dra);
  Alphabet alphabet = Alphabet::FromLetters("ab");
  // b ( b (a) (a) ) : the two a's sit at depth 3.
  std::optional<EventStream> events =
      ParseCompactMarkup(alphabet, "bbaAaABB");
  ASSERT_TRUE(events.has_value());
  runner.Reset();
  size_t i = 0;
  for (const TagEvent& event : *events) {
    if (event.open) {
      runner.OnOpen(event.symbol);
    } else {
      runner.OnClose(event.symbol);
    }
    ++i;
    if (i == 3) {  // after opening the first a
      EXPECT_EQ(runner.depth(), 3);
      EXPECT_EQ(runner.registers()[0], 3);
    }
  }
  EXPECT_EQ(runner.depth(), 0);
  EXPECT_TRUE(runner.InAcceptingState());
}

TEST(Dra, CmpCodeHelpers) {
  int code = 0;
  code = Dra::WithCmpDigit(code, 0, Dra::kGreater);
  code = Dra::WithCmpDigit(code, 2, Dra::kEqual);
  EXPECT_EQ(Dra::CmpDigit(code, 0), Dra::kGreater);
  EXPECT_EQ(Dra::CmpDigit(code, 1), Dra::kLess);
  EXPECT_EQ(Dra::CmpDigit(code, 2), Dra::kEqual);
  code = Dra::WithCmpDigit(code, 0, Dra::kLess);
  EXPECT_EQ(Dra::CmpDigit(code, 0), Dra::kLess);
  EXPECT_EQ(Dra::CmpDigit(code, 2), Dra::kEqual);
}

// A registerless TagDfa detecting "some opening tag a" (the simple example
// from Section 2.2: trees with at least one a-labelled node).
TagDfa BuildSomeA() {
  TagDfa dfa = TagDfa::Create(2, 2);
  dfa.initial = 0;
  dfa.accepting = {false, true};
  dfa.SetNextOpen(0, 0, 1);
  dfa.SetNextOpen(0, 1, 0);
  dfa.SetNextClose(0, 0, 0);
  dfa.SetNextClose(0, 1, 0);
  for (Symbol s = 0; s < 2; ++s) {
    dfa.SetNextOpen(1, s, 1);
    dfa.SetNextClose(1, s, 1);
  }
  return dfa;
}

TEST(TagDfa, SomeARecognizer) {
  TagDfa dfa = BuildSomeA();
  TagDfaMachine machine(&dfa);
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    Tree tree = RandomTree(10, 2, 0.5, &rng);
    bool has_a = false;
    for (int id = 0; id < tree.size(); ++id) {
      has_a = has_a || tree.label(id) == 0;
    }
    EXPECT_EQ(RunAcceptor(&machine, Encode(tree)), has_a);
  }
}

TEST(TagDfa, ClosureOperationsMatchBooleanSemantics) {
  // Lemma 2.4 for registerless languages: intersection, union, complement.
  TagDfa some_a = BuildSomeA();
  // "some b": same automaton with the roles of a and b swapped.
  TagDfa some_b = TagDfa::Create(2, 2);
  some_b.initial = 0;
  some_b.accepting = {false, true};
  some_b.SetNextOpen(0, 0, 0);
  some_b.SetNextOpen(0, 1, 1);
  some_b.SetNextClose(0, 0, 0);
  some_b.SetNextClose(0, 1, 0);
  for (Symbol s = 0; s < 2; ++s) {
    some_b.SetNextOpen(1, s, 1);
    some_b.SetNextClose(1, s, 1);
  }
  TagDfa both = TagDfaIntersection(some_a, some_b);
  TagDfa either = TagDfaUnion(some_a, some_b);
  TagDfa no_a = TagDfaComplement(some_a);
  Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    Tree tree = RandomTree(8, 2, 0.5, &rng);
    bool has_a = false, has_b = false;
    for (int id = 0; id < tree.size(); ++id) {
      has_a = has_a || tree.label(id) == 0;
      has_b = has_b || tree.label(id) == 1;
    }
    EventStream events = Encode(tree);
    TagDfaMachine m_both(&both), m_either(&either), m_no_a(&no_a);
    EXPECT_EQ(RunAcceptor(&m_both, events), has_a && has_b);
    EXPECT_EQ(RunAcceptor(&m_either, events), has_a || has_b);
    EXPECT_EQ(RunAcceptor(&m_no_a, events), !has_a);
  }
}

TEST(Dra, ClosureOperationsOnDras) {
  // Lemma 2.4 for stackless languages: product Example 2.2 with the
  // registerless "some a" automaton.
  Dra same_depth = BuildExample22();
  Dra some_a = DraFromTagDfa(BuildSomeA());
  Dra both = DraIntersection(same_depth, some_a);
  Dra either = DraUnion(same_depth, some_a);
  Dra neither = DraComplement(either);
  Rng rng(31);
  for (int trial = 0; trial < 150; ++trial) {
    Tree tree = RandomTree(1 + static_cast<int>(rng.NextBelow(20)), 2,
                           rng.NextDouble(), &rng);
    bool same = AllAsAtSameDepth(tree);
    bool has_a = false;
    for (int id = 0; id < tree.size(); ++id) {
      has_a = has_a || tree.label(id) == 0;
    }
    EventStream events = Encode(tree);
    DraRunner m_both(&both), m_either(&either), m_neither(&neither);
    EXPECT_EQ(RunAcceptor(&m_both, events), same && has_a);
    EXPECT_EQ(RunAcceptor(&m_either, events), same || has_a);
    EXPECT_EQ(RunAcceptor(&m_neither, events), !(same || has_a));
  }
}

TEST(Dra, FromTagDfaIsRestricted) {
  EXPECT_TRUE(IsRestricted(DraFromTagDfa(BuildSomeA())));
}

TEST(TagDfa, ClosingSymbolInvariantDetection) {
  TagDfa dfa = BuildSomeA();
  EXPECT_TRUE(dfa.ClosingSymbolInvariant());
  dfa.SetNextClose(0, 1, 1);
  EXPECT_FALSE(dfa.ClosingSymbolInvariant());
}

}  // namespace
}  // namespace sst
