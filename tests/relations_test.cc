#include <vector>

#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/dfa.h"
#include "automata/minimize.h"
#include "automata/random_dfa.h"
#include "automata/relations.h"
#include "base/rng.h"

namespace sst {
namespace {

TEST(InternalStates, InitialStateWithoutIncomingEdgesIsNotInternal) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("ab*", alphabet);
  std::vector<bool> internal = InternalStates(dfa);
  EXPECT_FALSE(internal[dfa.initial]);
  int after_a = dfa.Next(dfa.initial, 0);
  EXPECT_TRUE(internal[after_a]);
}

TEST(InternalStates, InitialStateOnACycleIsInternal) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("(ab)*", alphabet);
  std::vector<bool> internal = InternalStates(dfa);
  EXPECT_TRUE(internal[dfa.initial]);  // "ab" loops back to the initial state
}

TEST(AcceptiveRejective, MatchDefinitions) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  // "a*": the accepting start loops on a; reading b falls into a sink.
  Dfa dfa = CompileRegex("a*", alphabet);
  std::vector<bool> acceptive = AcceptiveStates(dfa);
  std::vector<bool> rejective = RejectiveStates(dfa);
  int start = dfa.initial;
  int sink = dfa.Next(start, 1);
  EXPECT_TRUE(acceptive[start]);
  EXPECT_TRUE(rejective[start]);  // can reach the sink via b
  EXPECT_FALSE(acceptive[sink]);
  EXPECT_TRUE(rejective[sink]);
}

TEST(AlmostEquivalence, AtMostTwoStatesPairwiseAlmostEquivalent) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    Dfa minimal = Minimize(RandomDfa(14, 2, 0.4, &rng));
    for (int p = 0; p < minimal.num_states; ++p) {
      int count = 0;
      for (int q = 0; q < minimal.num_states; ++q) {
        if (AlmostEquivalentStates(minimal, p, q)) ++count;
      }
      EXPECT_LE(count, 2);  // p itself plus at most one partner
    }
  }
}

TEST(AlmostEquivalence, AgreesWithSemanticDefinition) {
  // p and q are almost equivalent iff they agree on all nonempty words.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    Dfa minimal = Minimize(RandomDfa(10, 2, 0.4, &rng));
    for (int p = 0; p < minimal.num_states; ++p) {
      for (int q = 0; q < minimal.num_states; ++q) {
        Word w;
        bool semantically =
            !FindAlmostDistinguishingWord(minimal, p, q, &w);
        EXPECT_EQ(AlmostEquivalentStates(minimal, p, q), semantically);
        if (!semantically) {
          ASSERT_FALSE(w.empty());
          EXPECT_NE(minimal.accepting[minimal.Run(p, w)],
                    minimal.accepting[minimal.Run(q, w)]);
        }
      }
    }
  }
}

TEST(PairReachability, MeetsMatchesBruteForce) {
  Rng rng(23);
  for (int trial = 0; trial < 15; ++trial) {
    Dfa dfa = Minimize(RandomDfa(8, 2, 0.5, &rng));
    PairReachability reach(dfa, /*blind=*/false);
    // Brute force over all words up to a safe bound (n^2 pairs).
    int n = dfa.num_states;
    std::vector<std::vector<bool>> meets(n, std::vector<bool>(n, false));
    std::vector<std::pair<int, int>> frontier;
    std::vector<std::vector<bool>> seen(n, std::vector<bool>(n, false));
    for (int p = 0; p < n; ++p) {
      for (int q = 0; q < n; ++q) {
        frontier.emplace_back(p, q);
        seen[p][q] = true;
      }
    }
    // Fixpoint: (p,q) meets if p==q or some successor pair meets.
    bool changed = true;
    while (changed) {
      changed = false;
      for (int p = 0; p < n; ++p) {
        for (int q = 0; q < n; ++q) {
          if (meets[p][q]) continue;
          bool now = p == q;
          for (Symbol a = 0; a < dfa.num_symbols && !now; ++a) {
            now = meets[dfa.Next(p, a)][dfa.Next(q, a)];
          }
          if (now) {
            meets[p][q] = true;
            changed = true;
          }
        }
      }
    }
    for (int p = 0; p < n; ++p) {
      for (int q = 0; q < n; ++q) {
        EXPECT_EQ(reach.Meets(p, q), meets[p][q]) << p << "," << q;
      }
    }
  }
}

TEST(PairReachability, MeetInWordWitnessIsValid) {
  Rng rng(29);
  for (int trial = 0; trial < 15; ++trial) {
    Dfa dfa = Minimize(RandomDfa(8, 2, 0.5, &rng));
    PairReachability reach(dfa, /*blind=*/false);
    for (int p = 0; p < dfa.num_states; ++p) {
      for (int q = 0; q < dfa.num_states; ++q) {
        for (int t = 0; t < dfa.num_states; ++t) {
          Word u;
          if (reach.MeetsIn(p, q, t)) {
            ASSERT_TRUE(reach.FindMeetInWord(p, q, t, &u));
            EXPECT_EQ(dfa.Run(p, u), t);
            EXPECT_EQ(dfa.Run(q, u), t);
          } else {
            EXPECT_FALSE(reach.FindMeetInWord(p, q, t, &u));
          }
        }
      }
    }
  }
}

TEST(PairReachability, BlindMeetIsWeakerThanMeet) {
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    Dfa dfa = Minimize(RandomDfa(8, 2, 0.5, &rng));
    PairReachability sync(dfa, /*blind=*/false);
    PairReachability blind(dfa, /*blind=*/true);
    for (int p = 0; p < dfa.num_states; ++p) {
      for (int q = 0; q < dfa.num_states; ++q) {
        if (sync.Meets(p, q)) {
          EXPECT_TRUE(blind.Meets(p, q));  // same word on both sides
        }
      }
    }
  }
}

TEST(PairReachability, BlindWitnessesHaveEqualLength) {
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    Dfa dfa = Minimize(RandomDfa(7, 2, 0.5, &rng));
    PairReachability blind(dfa, /*blind=*/true);
    for (int p = 0; p < dfa.num_states; ++p) {
      for (int q = 0; q < dfa.num_states; ++q) {
        for (int t = 0; t < dfa.num_states; ++t) {
          Word u1, u2;
          if (blind.MeetsIn(p, q, t)) {
            ASSERT_TRUE(blind.FindBlindMeetInWords(p, q, t, &u1, &u2));
            EXPECT_EQ(u1.size(), u2.size());
            EXPECT_EQ(dfa.Run(p, u1), t);
            EXPECT_EQ(dfa.Run(q, u2), t);
          }
        }
      }
    }
  }
}

TEST(Loops, LoopingWordReturnsToState) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("(a|b)*a", alphabet);
  for (int q = 0; q < dfa.num_states; ++q) {
    Word w;
    ASSERT_TRUE(FindLoopingWord(dfa, q, &w));
    EXPECT_FALSE(w.empty());
    EXPECT_EQ(dfa.Run(q, w), q);
  }
}

TEST(WordToAcceptance, FindsWitnesses) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("ab", alphabet);
  Word w;
  ASSERT_TRUE(FindWordToAcceptance(dfa, dfa.initial, true, &w));
  EXPECT_TRUE(dfa.accepting[dfa.Run(dfa.initial, w)]);
  ASSERT_TRUE(FindWordToAcceptance(dfa, dfa.initial, false, &w));
  EXPECT_FALSE(dfa.accepting[dfa.Run(dfa.initial, w)]);
}

}  // namespace
}  // namespace sst
