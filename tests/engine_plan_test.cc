#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "core/stackless.h"
#include "engine/query_plan.h"
#include "engine/session.h"
#include "query/rpq.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

// Global allocation counter so tests can assert that pooled session reuse
// performs no heap allocation (acceptance criterion of the engine layer).
// Counts every operator new in the binary; tests only look at deltas.
namespace {
std::atomic<int64_t> g_heap_allocations{0};
}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace sst {
namespace {

std::shared_ptr<const QueryPlan> CompileXPath(const std::string& xpath,
                                              const Alphabet& alphabet,
                                              PlanOptions options = {}) {
  return QueryPlan::Compile(Rpq::FromXPath(xpath, alphabet), options);
}

TEST(QueryPlan, TierSelectionMatchesCharacterization) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  // Example 2.12 of the paper: the three XPath shapes land on the three
  // evaluation tiers under the markup encoding.
  auto registerless = CompileXPath("/a//b", alphabet);
  EXPECT_EQ(registerless->kind(), EvaluatorKind::kRegisterless);
  EXPECT_TRUE(registerless->exact());
  EXPECT_NE(registerless->tag_dfa(), nullptr);
  EXPECT_EQ(registerless->stackless(), nullptr);

  auto stackless = CompileXPath("/a/b", alphabet);
  EXPECT_EQ(stackless->kind(), EvaluatorKind::kStackless);
  EXPECT_TRUE(stackless->exact());
  EXPECT_EQ(stackless->tag_dfa(), nullptr);
  EXPECT_NE(stackless->stackless(), nullptr);

  auto baseline = CompileXPath("//a/b", alphabet);
  EXPECT_EQ(baseline->kind(), EvaluatorKind::kStackBaseline);
  EXPECT_TRUE(baseline->exact());
  EXPECT_EQ(baseline->fused(), nullptr);
}

TEST(QueryPlan, StackFallbackCanBeDisabled) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  PlanOptions options;
  options.allow_stack_fallback = false;
  auto plan = CompileXPath("//a/b", alphabet, options);
  EXPECT_FALSE(plan->exact());
  EXPECT_EQ(plan->NewMachine(), nullptr);
  // The classification verdicts are still available on an inexact plan.
  EXPECT_FALSE(plan->classification().har);
}

TEST(QueryPlan, FusedRunnerAgreesWithScannerTablesOnAllBytes) {
  // Satellite 1: the fused byte table and the scanner's byte tables are
  // built once, in the plan, from the same alphabet — they must agree on
  // every one of the 256 byte values.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = CompileXPath("/a//b", alphabet);
  ASSERT_NE(plan->fused(), nullptr);
  const ScannerTables& tables = plan->scanner_tables();
  for (int b = 0; b < 256; ++b) {
    unsigned char byte = static_cast<unsigned char>(b);
    Symbol fused_symbol = plan->fused()->byte_symbol(byte);
    uint8_t cls = tables.byte_class[byte];
    if (cls == ScannerTables::kOpen || cls == ScannerTables::kClose) {
      EXPECT_EQ(fused_symbol, tables.byte_symbol[byte])
          << "byte " << b << " disagrees between fused and scanner tables";
    } else {
      // Bytes the scanner does not treat as tags must not map to a symbol
      // in the fused table either.
      EXPECT_LT(fused_symbol, 0) << "byte " << b;
    }
  }
}

TEST(QueryPlan, SessionsMatchLegacyFacadeAndGroundTruth) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(11);
  std::vector<Tree> trees = testing::SampleTrees(40, 3, &rng);
  for (const char* xpath : {"/a//b", "/a/b", "//a/b"}) {
    Rpq rpq = Rpq::FromXPath(xpath, alphabet);
    auto plan = QueryPlan::Compile(rpq, PlanOptions{});
    CompiledQuery legacy = CompileQuery(rpq, StreamEncoding::kMarkup);
    ASSERT_TRUE(legacy.exact);
    // The facade is an adapter over the engine: it exposes the plan it
    // compiled, with identical verdicts.
    ASSERT_NE(legacy.plan, nullptr);
    EXPECT_EQ(legacy.plan->kind(), plan->kind());

    Session session(plan);
    for (const Tree& tree : trees) {
      std::string text = ToCompactMarkup(alphabet, Encode(tree));
      std::vector<bool> expected = SelectNodes(rpq.minimal_dfa, tree);
      int64_t expected_matches = 0;
      for (bool b : expected) expected_matches += b ? 1 : 0;

      session.Reset();
      ASSERT_TRUE(session.Feed(text) && session.Finish())
          << xpath << ": " << session.selector().error();
      EXPECT_EQ(session.matches(), expected_matches) << xpath;

      legacy.machine->Reset();
      StreamingSelector selector(legacy.machine.get(),
                                 StreamFormat::kCompactMarkup, &alphabet);
      ASSERT_TRUE(selector.Feed(text) && selector.Finish());
      EXPECT_EQ(session.matches(), selector.matches()) << xpath;
    }
  }
}

TEST(Session, BorrowsFusedFastPathFromPlan) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  auto plan = CompileXPath("/a//b", alphabet);
  ASSERT_NE(plan->fused(), nullptr);
  Session session(plan);
  EXPECT_TRUE(session.selector().using_fused_fast_path());
}

TEST(SessionPool, PooledAcquirePerformsNoHeapAllocation) {
  // Acceptance criterion: opening a pooled session on a compiled plan is
  // allocation-free — all tables live in the plan, Reset touches no heap.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = CompileXPath("/a//b", alphabet);
  SessionPool pool(plan, /*max_idle=*/4);
  // Warm the pool: first acquisition constructs the session.
  pool.Release(pool.Acquire());
  ASSERT_EQ(pool.idle(), 1u);

  int64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  std::unique_ptr<Session> session = pool.Acquire();
  int64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "pooled Acquire() must not touch the heap";
  EXPECT_EQ(session->matches(), 0);
  pool.Release(std::move(session));

  SessionPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.created, 1);
  EXPECT_EQ(stats.reused, 1);
}

TEST(SessionPool, SteadyStateStreamingIsAllocationFree) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = CompileXPath("/a//b", alphabet);
  SessionPool pool(plan, /*max_idle=*/4);
  const std::string text = "abBabBAbBA";  // a(b, a(b), b)
  // Warm-up request (constructs the session, sizes any lazy buffers).
  {
    auto session = pool.Acquire();
    ASSERT_TRUE(session->Feed(text) && session->Finish());
    pool.Release(std::move(session));
  }
  int64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 16; ++i) {
    auto session = pool.Acquire();
    ASSERT_TRUE(session->Feed(text) && session->Finish());
    pool.Release(std::move(session));
  }
  int64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "a warm acquire/stream/release cycle must be allocation-free";
}

TEST(SessionPool, BoundsIdleListAndSharesOnePlan) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  auto plan = CompileXPath("/a/b", alphabet);
  SessionPool pool(plan, /*max_idle=*/2);
  std::vector<std::unique_ptr<Session>> out;
  for (int i = 0; i < 5; ++i) out.push_back(pool.Acquire());
  for (auto& session : out) {
    EXPECT_EQ(session->plan_ptr().get(), plan.get());
    pool.Release(std::move(session));
  }
  EXPECT_EQ(pool.idle(), 2u);  // releases beyond max_idle are destroyed
  EXPECT_EQ(pool.stats().created, 5);
}

TEST(SessionPool, LeaseReturnsSessionOnScopeExit) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  auto plan = CompileXPath("/a/b", alphabet);
  SessionPool pool(plan);
  {
    SessionLease lease = Lease(pool);
    ASSERT_TRUE(lease->Feed("abBA") && lease->Finish());
  }
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_EQ(pool.stats().created, 1);
}

TEST(QueryPlan, TermEncodingUsesBlindVerdicts) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  PlanOptions options;
  options.encoding = StreamEncoding::kTerm;
  options.format = StreamFormat::kCompactTerm;
  Rpq rpq = Rpq::FromXPath("/a//b", alphabet);
  auto plan = QueryPlan::Compile(rpq, options);
  // /a//b is blindly almost-reversible, so the term-encoding plan is still
  // registerless — but the fused byte table only exists for compact
  // markup.
  EXPECT_EQ(plan->kind(), EvaluatorKind::kRegisterless);
  EXPECT_EQ(plan->fused(), nullptr);

  Session session(plan);
  Rng rng(7);
  for (const Tree& tree : testing::SampleTrees(20, 3, &rng)) {
    std::string text = ToCompactTerm(alphabet, Encode(tree));
    std::vector<bool> expected = SelectNodes(rpq.minimal_dfa, tree);
    int64_t expected_matches = 0;
    for (bool b : expected) expected_matches += b ? 1 : 0;
    session.Reset();
    ASSERT_TRUE(session.Feed(text) && session.Finish())
        << session.selector().error();
    EXPECT_EQ(session.matches(), expected_matches);
  }
}

}  // namespace
}  // namespace sst
