// Parameterized property sweeps: each parameter value is an independent
// random universe (generator family x seed); every lemma-level identity of
// the paper is re-verified in each universe. Failures print the exact
// (family, seed) pair for reproduction.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "automata/dfa.h"
#include "automata/minimize.h"
#include "automata/random_dfa.h"
#include "base/rng.h"
#include "classes/syntactic_classes.h"
#include "dra/machine.h"
#include "eval/el_synopsis.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"
#include "eval/stackless_query.h"
#include "fooling/fooling.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

enum class Family { kUniform, kPermutation, kRTrivial, kFinite };

const char* FamilyName(Family family) {
  switch (family) {
    case Family::kUniform:
      return "uniform";
    case Family::kPermutation:
      return "permutation";
    case Family::kRTrivial:
      return "rtrivial";
    case Family::kFinite:
      return "finite";
  }
  return "?";
}

Dfa MakeLanguage(Family family, uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  switch (family) {
    case Family::kUniform:
      return Minimize(RandomDfa(7, 2, 0.4, &rng));
    case Family::kPermutation:
      return Minimize(RandomPermutationDfa(5, 2, 0.5, &rng));
    case Family::kRTrivial:
      return Minimize(RandomRTrivialDfa(7, 2, 0.4, &rng));
    case Family::kFinite:
      return Minimize(RandomFiniteLanguageDfa(4, 2, 0.5, &rng));
  }
  return Dfa::Create(1, 2);
}

using Universe = std::tuple<Family, int>;

std::string UniverseName(const ::testing::TestParamInfo<Universe>& info) {
  return std::string(FamilyName(std::get<0>(info.param))) + "_" +
         std::to_string(std::get<1>(info.param));
}

class ClassLaws : public ::testing::TestWithParam<Universe> {
 protected:
  Dfa Language() {
    auto [family, seed] = GetParam();
    return MakeLanguage(family, seed);
  }
};

TEST_P(ClassLaws, Lemma310FlatnessDuality) {
  Dfa dfa = Language();
  Dfa complement = Complement(dfa);
  EXPECT_EQ(IsAFlat(dfa), IsEFlat(complement));
  EXPECT_EQ(IsEFlat(dfa), IsAFlat(complement));
  EXPECT_EQ(IsBlindAFlat(dfa), IsBlindEFlat(complement));
  EXPECT_EQ(IsBlindEFlat(dfa), IsBlindAFlat(complement));
}

TEST_P(ClassLaws, Lemma310AlmostReversibleConjunction) {
  Dfa dfa = Language();
  EXPECT_EQ(IsAlmostReversible(dfa), IsEFlat(dfa) && IsAFlat(dfa));
  EXPECT_EQ(IsBlindAlmostReversible(dfa),
            IsBlindEFlat(dfa) && IsBlindAFlat(dfa));
}

TEST_P(ClassLaws, Lemma37HarComplementClosure) {
  Dfa dfa = Language();
  Dfa complement = Complement(dfa);
  EXPECT_EQ(IsHar(dfa), IsHar(complement));
  EXPECT_EQ(IsBlindHar(dfa), IsBlindHar(complement));
}

TEST_P(ClassLaws, ClassHierarchy) {
  Dfa dfa = Language();
  Classification c = Classify(dfa);
  if (c.almost_reversible) {
    EXPECT_TRUE(c.har);
  }
  if (c.r_trivial) {
    EXPECT_TRUE(c.har);
  }
  if (c.reversible) {
    EXPECT_TRUE(c.almost_reversible);
  }
  // Blind classes refine the plain ones.
  if (c.blind_almost_reversible) {
    EXPECT_TRUE(c.almost_reversible);
  }
  if (c.blind_har) {
    EXPECT_TRUE(c.har);
  }
  if (c.blind_e_flat) {
    EXPECT_TRUE(c.e_flat);
  }
  if (c.blind_a_flat) {
    EXPECT_TRUE(c.a_flat);
  }
}

class ConstructionLaws : public ::testing::TestWithParam<Universe> {
 protected:
  void SetUp() override {
    auto [family, seed] = GetParam();
    dfa_ = MakeLanguage(family, seed);
    rng_seed_ = static_cast<uint64_t>(seed) * 31 + 7;
  }

  Dfa dfa_{};
  uint64_t rng_seed_ = 0;
};

TEST_P(ConstructionLaws, StackBaselineAlwaysExact) {
  Rng rng(rng_seed_);
  StackQueryEvaluator machine(&dfa_);
  for (const Tree& tree : testing::SampleTrees(15, 2, &rng)) {
    ASSERT_EQ(RunQueryOnTree(&machine, tree), SelectNodes(dfa_, tree));
  }
}

TEST_P(ConstructionLaws, Lemma35ExactIffPreconditionHolds) {
  Rng rng(rng_seed_ + 1);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa_, /*blind=*/false);
  TagDfaMachine machine(&evaluator);
  if (IsAlmostReversible(dfa_)) {
    for (const Tree& tree : testing::SampleTrees(20, 2, &rng)) {
      ASSERT_EQ(RunQueryOnTree(&machine, tree), SelectNodes(dfa_, tree));
    }
  }
}

TEST_P(ConstructionLaws, Lemma38ExactWhenHar) {
  Rng rng(rng_seed_ + 2);
  if (!IsHar(dfa_)) return;
  StacklessQueryEvaluator machine(dfa_, /*blind=*/false);
  for (const Tree& tree : testing::SampleTrees(20, 2, &rng)) {
    ASSERT_EQ(RunQueryOnTree(&machine, tree), SelectNodes(dfa_, tree));
  }
}

TEST_P(ConstructionLaws, Lemma311ExactWhenEFlat) {
  Rng rng(rng_seed_ + 3);
  if (!IsEFlat(dfa_)) return;
  ElSynopsisRecognizer machine(dfa_, /*blind=*/false);
  for (const Tree& tree : testing::SampleTrees(20, 2, &rng)) {
    ASSERT_EQ(RunAcceptor(&machine, Encode(tree)), TreeInExists(dfa_, tree));
    EXPECT_FALSE(machine.hit_unexpected_case());
  }
}

TEST_P(ConstructionLaws, BlindVariantsExactOnTermStreams) {
  Rng rng(rng_seed_ + 4);
  if (IsBlindAlmostReversible(dfa_)) {
    TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa_, /*blind=*/true);
    TagDfaMachine machine(&evaluator);
    for (const Tree& tree : testing::SampleTrees(15, 2, &rng)) {
      ASSERT_EQ(RunQueryOnTree(&machine, tree, /*term_encoded=*/true),
                SelectNodes(dfa_, tree));
    }
  }
  if (IsBlindHar(dfa_)) {
    StacklessQueryEvaluator machine(dfa_, /*blind=*/true);
    for (const Tree& tree : testing::SampleTrees(15, 2, &rng)) {
      ASSERT_EQ(RunQueryOnTree(&machine, tree, /*term_encoded=*/true),
                SelectNodes(dfa_, tree));
    }
  }
}

TEST_P(ConstructionLaws, FoolingWitnessEquationsWhenClassFails) {
  if (std::optional<NonEFlatWitness> witness = ExtractNonEFlatWitness(dfa_);
      witness.has_value()) {
    // The Lemma 3.12 certificate's ground truths must differ at every
    // exponent.
    for (int exponent : {1, 2, 3}) {
      FoolingPair pair = BuildLemma312Trees(*witness, exponent, dfa_);
      EXPECT_TRUE(TreeInExists(dfa_, pair.in_el));
      EXPECT_FALSE(TreeInExists(dfa_, pair.out_el));
    }
  }
  if (std::optional<NonHarWitness> witness = ExtractNonHarWitness(dfa_);
      witness.has_value()) {
    for (int exponent : {1, 2}) {
      FoolingPair pair = BuildLemma316Trees(*witness, exponent, dfa_);
      EXPECT_TRUE(TreeInExists(dfa_, pair.in_el));
      EXPECT_FALSE(TreeInExists(dfa_, pair.out_el));
    }
  }
}

class EncodingLaws : public ::testing::TestWithParam<int> {};

TEST_P(EncodingLaws, EncodeDecodeRoundTrip) {
  Rng rng(GetParam() * 977 + 5);
  int nodes = 1 + static_cast<int>(rng.NextBelow(80));
  Tree tree = RandomTree(nodes, 4, rng.NextDouble(), &rng);
  EventStream events = Encode(tree);
  std::optional<Tree> decoded = Decode(events);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(Encode(*decoded), events);
  // Document order of the decoded tree is the identity (nodes are created
  // in stream order).
  std::vector<int> order = decoded->DocumentOrderIds();
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i));
  }
}

TEST_P(EncodingLaws, SerializationsAgree) {
  Rng rng(GetParam() * 1013 + 3);
  Alphabet alphabet = Alphabet::FromLetters("abcd");
  int nodes = 1 + static_cast<int>(rng.NextBelow(50));
  Tree tree = RandomTree(nodes, 4, rng.NextDouble(), &rng);
  EventStream events = Encode(tree);
  std::optional<EventStream> markup =
      ParseCompactMarkup(alphabet, ToCompactMarkup(alphabet, events));
  ASSERT_TRUE(markup.has_value());
  EXPECT_EQ(*markup, events);
  std::optional<EventStream> term =
      ParseCompactTerm(alphabet, ToCompactTerm(alphabet, events));
  ASSERT_TRUE(term.has_value());
  std::optional<Tree> from_term = Decode(*term);
  ASSERT_TRUE(from_term.has_value());
  EXPECT_EQ(Encode(*from_term), events);
  Alphabet xml_alphabet = alphabet;
  std::optional<EventStream> xml =
      ParseXmlLite(&xml_alphabet, ToXmlLite(alphabet, events));
  ASSERT_TRUE(xml.has_value());
  EXPECT_EQ(*xml, events);
}

std::vector<Universe> AllUniverses() {
  std::vector<Universe> result;
  for (Family family : {Family::kUniform, Family::kPermutation,
                        Family::kRTrivial, Family::kFinite}) {
    for (int seed = 0; seed < 12; ++seed) {
      result.emplace_back(family, seed);
    }
  }
  return result;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ClassLaws,
                         ::testing::ValuesIn(AllUniverses()), UniverseName);
INSTANTIATE_TEST_SUITE_P(AllFamilies, ConstructionLaws,
                         ::testing::ValuesIn(AllUniverses()), UniverseName);
INSTANTIATE_TEST_SUITE_P(Seeds, EncodingLaws, ::testing::Range(0, 25));

}  // namespace
}  // namespace sst
