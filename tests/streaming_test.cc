#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "dra/streaming.h"
#include "dra/tag_dfa.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

// Global allocation counter so tests can assert that Feed performs no
// steady-state heap allocation. Counts every operator new in the binary;
// tests only look at deltas around the code under test.
namespace {
std::atomic<int64_t> g_heap_allocations{0};
}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace sst {
namespace {

// Splits `text` into chunks of the given size and feeds them one by one,
// exercising every possible tag split across chunk boundaries.
bool FeedChunked(StreamingSelector* selector, const std::string& text,
                 size_t chunk_size) {
  for (size_t i = 0; i < text.size(); i += chunk_size) {
    if (!selector->Feed(std::string_view(text).substr(i, chunk_size))) {
      return false;
    }
  }
  return selector->Finish();
}

TEST(StreamingSelector, CompactMarkupMatchesBatchEvaluation) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  Rng rng(3);
  for (const Tree& tree : testing::SampleTrees(60, 3, &rng)) {
    std::string text = ToCompactMarkup(alphabet, Encode(tree));
    std::vector<bool> expected = SelectNodes(dfa, tree);
    int64_t expected_matches = 0;
    for (bool b : expected) expected_matches += b ? 1 : 0;
    for (size_t chunk_size : {size_t{1}, size_t{3}, text.size()}) {
      TagDfaMachine machine(&evaluator);
      StreamingSelector selector(
          &machine, StreamingSelector::Format::kCompactMarkup, &alphabet);
      ASSERT_TRUE(FeedChunked(&selector, text, chunk_size))
          << selector.error();
      EXPECT_EQ(selector.matches(), expected_matches);
      EXPECT_EQ(selector.nodes(), tree.size());
      EXPECT_TRUE(selector.document_complete());
    }
  }
}

TEST(StreamingSelector, XmlLiteHandlesTagsSplitAcrossChunks) {
  Alphabet alphabet;
  alphabet.Intern("doc");
  alphabet.Intern("item");
  Dfa dfa = CompileRegex(".*", alphabet);  // select every node
  Dfa every = dfa;
  StackQueryEvaluator machine(&every);
  StreamingSelector selector(&machine, StreamingSelector::Format::kXmlLite,
                             &alphabet);
  std::string text = "<doc><item></item><item></item></doc>";
  for (size_t chunk_size = 1; chunk_size <= text.size(); ++chunk_size) {
    selector.Reset();
    ASSERT_TRUE(FeedChunked(&selector, text, chunk_size))
        << chunk_size << ": " << selector.error();
    EXPECT_EQ(selector.nodes(), 3);
    EXPECT_EQ(selector.matches(), 3);
  }
}

TEST(StreamingSelector, TermEncodingDrivesBlindMachines) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/true);
  Rng rng(5);
  for (const Tree& tree : testing::SampleTrees(40, 3, &rng)) {
    std::string text = ToCompactTerm(alphabet, Encode(tree));
    std::vector<bool> expected = SelectNodes(dfa, tree);
    int64_t expected_matches = 0;
    for (bool b : expected) expected_matches += b ? 1 : 0;
    TagDfaMachine machine(&evaluator);
    StreamingSelector selector(
        &machine, StreamingSelector::Format::kCompactTerm, &alphabet);
    ASSERT_TRUE(FeedChunked(&selector, text, 2)) << selector.error();
    EXPECT_EQ(selector.matches(), expected_matches);
  }
}

TEST(StreamingSelector, MatchCallbackReportsDocumentOrderIndices) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);  // select nodes on all-a paths
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine,
                             StreamingSelector::Format::kCompactMarkup,
                             &alphabet);
  std::vector<int64_t> reported;
  selector.set_match_callback(
      [&](int64_t index, Symbol) { reported.push_back(index); });
  ASSERT_TRUE(selector.Feed("aabBAbBA"));  // a( a(b), b )
  ASSERT_TRUE(selector.Finish());
  EXPECT_EQ(reported, (std::vector<int64_t>{0, 1}));
}

TEST(StreamingSelector, MalformedInputsAreRejected) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);

  auto reject = [&](StreamingSelector::Format format, const char* text) {
    StackQueryEvaluator machine(&dfa);
    StreamingSelector selector(&machine, format, &alphabet);
    bool fed = selector.Feed(text);
    bool finished = fed && selector.Finish();
    EXPECT_FALSE(finished) << text;
    EXPECT_FALSE(selector.error().empty()) << text;
  };

  using Format = StreamingSelector::Format;
  reject(Format::kCompactMarkup, "aB");     // mismatched close
  reject(Format::kCompactMarkup, "a");      // unclosed
  reject(Format::kCompactMarkup, "A");      // close without open
  reject(Format::kCompactMarkup, "aAbB");   // two roots
  reject(Format::kCompactMarkup, "x");      // unknown label
  reject(Format::kCompactMarkup, "a?A");    // garbage byte
  reject(Format::kXmlLite, "<a><b></a></b>");  // improper nesting
  reject(Format::kXmlLite, "<a>");             // truncated document
  reject(Format::kXmlLite, "<a></a><!");       // trailing garbage
  reject(Format::kXmlLite, "<zzz></zzz>");     // outside alphabet
  reject(Format::kCompactTerm, "a{");          // unclosed
  reject(Format::kCompactTerm, "}");           // close without open
  reject(Format::kCompactTerm, "a}");          // label without '{'
}

// Hides a machine's TagDfa export so the selector takes the generic
// (virtual-dispatch) path; used to cross-check the fused fast path.
class OpaqueMachine final : public StreamMachine {
 public:
  explicit OpaqueMachine(StreamMachine* inner) : inner_(inner) {}
  void Reset() override { inner_->Reset(); }
  void OnOpen(Symbol symbol) override { inner_->OnOpen(symbol); }
  void OnClose(Symbol symbol) override { inner_->OnClose(symbol); }
  bool InAcceptingState() const override {
    return inner_->InAcceptingState();
  }

 private:
  StreamMachine* inner_;
};

// Everything observable about one streaming run. chunks_fed is the one
// counter deliberately absent: it measures the split schedule itself.
struct RunResult {
  bool fed = false;
  bool finished = false;
  int64_t nodes = 0;
  int64_t matches = 0;
  int64_t events = 0;
  int64_t max_depth = 0;
  int64_t bytes_fed = 0;
  int64_t errors_recovered = 0;
  int64_t subtrees_skipped = 0;
  int64_t error_offset = -1;
  StreamError stream_error;
  std::string error;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult RunWithSplits(StreamingSelector* selector, const std::string& text,
                        const std::vector<size_t>& splits) {
  selector->Reset();
  RunResult result;
  result.fed = true;
  size_t offset = 0;
  for (size_t len : splits) {
    if (!selector->Feed(std::string_view(text).substr(offset, len))) {
      result.fed = false;
      break;
    }
    offset += len;
  }
  result.finished = result.fed && selector->Finish();
  result.nodes = selector->nodes();
  result.matches = selector->matches();
  StreamStats stats = selector->stats();
  result.events = stats.events;
  result.max_depth = stats.max_depth;
  result.bytes_fed = stats.bytes_fed;
  result.errors_recovered = stats.errors_recovered;
  result.subtrees_skipped = stats.subtrees_skipped;
  result.error_offset = stats.error_offset;
  result.stream_error = selector->stream_error();
  result.error = selector->error();
  return result;
}

std::vector<size_t> UniformSplits(size_t text_size, size_t chunk_size) {
  std::vector<size_t> splits;
  for (size_t i = 0; i < text_size; i += chunk_size) {
    splits.push_back(std::min(chunk_size, text_size - i));
  }
  return splits;
}

std::vector<size_t> RandomSplits(size_t text_size, Rng* rng) {
  std::vector<size_t> splits;
  size_t offset = 0;
  while (offset < text_size) {
    size_t len = 1 + static_cast<size_t>(rng->NextBelow(9));
    len = std::min(len, text_size - offset);
    splits.push_back(len);
    offset += len;
  }
  return splits;
}

// Valid and malformed documents per format, for the re-split property.
std::vector<std::string> PropertyCorpus(StreamingSelector::Format format,
                                        const Alphabet& alphabet) {
  Rng rng(13);
  std::vector<std::string> corpus;
  for (const Tree& tree : testing::SampleTrees(12, 3, &rng)) {
    EventStream events = Encode(tree);
    switch (format) {
      case StreamingSelector::Format::kCompactMarkup:
        corpus.push_back(ToCompactMarkup(alphabet, events));
        break;
      case StreamingSelector::Format::kXmlLite:
        corpus.push_back(ToXmlLite(alphabet, events));
        break;
      case StreamingSelector::Format::kCompactTerm:
        corpus.push_back(ToCompactTerm(alphabet, events));
        break;
    }
  }
  switch (format) {
    case StreamingSelector::Format::kCompactMarkup:
      for (const char* text : {"aB", "a", "A", "aAbB", "x", "a?A", "",
                               "a \n b\tB  A", "abcCBAaA", "aa"}) {
        corpus.push_back(text);
      }
      break;
    case StreamingSelector::Format::kXmlLite:
      for (const char* text :
           {"<a><b></a></b>", "<a>", "<a></a><!", "<zzz></zzz>", "<>",
            "</>", "< a></ a>", " <a> <b> </b> </a> ", "<a></a",
            "<a></a><b></b>"}) {
        corpus.push_back(text);
      }
      break;
    case StreamingSelector::Format::kCompactTerm:
      for (const char* text : {"a{", "}", "a}", "a{b{}}", "a{} b{}", "a?",
                               "a {b {} c {}}", "a{}}", "x{}", "a"}) {
        corpus.push_back(text);
      }
      break;
  }
  return corpus;
}

// Satellite: every document, re-split at all chunk sizes 1..16 plus
// randomized schedules, must behave byte-for-byte like single-chunk
// feeding — matches, nodes, events, errors, and error offsets included.
TEST(StreamingSelector, ChunkSplitsNeverChangeTheOutcome) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  for (bool blind : {false, true}) {
    TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, blind);
    TagDfaMachine machine(&evaluator);
    auto formats = blind
        ? std::vector<StreamingSelector::Format>{
              StreamingSelector::Format::kCompactTerm}
        : std::vector<StreamingSelector::Format>{
              StreamingSelector::Format::kCompactMarkup,
              StreamingSelector::Format::kXmlLite};
    for (auto format : formats) {
      StreamingSelector selector(&machine, format, &alphabet);
      for (const std::string& text : PropertyCorpus(format, alphabet)) {
        RunResult whole =
            RunWithSplits(&selector, text, UniformSplits(text.size(),
                          text.empty() ? 1 : text.size()));
        for (size_t chunk_size = 1; chunk_size <= 16; ++chunk_size) {
          RunResult split = RunWithSplits(
              &selector, text, UniformSplits(text.size(), chunk_size));
          EXPECT_EQ(split, whole)
              << "format " << static_cast<int>(format) << " chunk "
              << chunk_size << " text \"" << text << '"';
        }
        Rng rng(17);
        for (int trial = 0; trial < 8; ++trial) {
          RunResult split =
              RunWithSplits(&selector, text, RandomSplits(text.size(), &rng));
          EXPECT_EQ(split, whole)
              << "format " << static_cast<int>(format) << " random trial "
              << trial << " text \"" << text << '"';
        }
      }
    }
  }
}

// The fused byte-table fast path (registerless machine) and the generic
// virtual-dispatch path must be observationally identical.
TEST(StreamingSelector, FusedFastPathAgreesWithGenericPath) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  TagDfaMachine fused_machine(&evaluator);
  TagDfaMachine inner(&evaluator);
  OpaqueMachine generic_machine(&inner);

  StreamingSelector fused(&fused_machine,
                          StreamingSelector::Format::kCompactMarkup,
                          &alphabet);
  StreamingSelector generic(&generic_machine,
                            StreamingSelector::Format::kCompactMarkup,
                            &alphabet);
  ASSERT_TRUE(fused.using_fused_fast_path());
  ASSERT_FALSE(generic.using_fused_fast_path());

  for (const std::string& text : PropertyCorpus(
           StreamingSelector::Format::kCompactMarkup, alphabet)) {
    for (size_t chunk_size = 1; chunk_size <= 8; ++chunk_size) {
      std::vector<size_t> splits = UniformSplits(text.size(), chunk_size);
      EXPECT_EQ(RunWithSplits(&fused, text, splits),
                RunWithSplits(&generic, text, splits))
          << "chunk " << chunk_size << " text \"" << text << '"';
    }
  }
  // The synced machine state must agree too.
  EXPECT_EQ(fused_machine.state(), inner.state());
}

// Acceptance criterion: the steady-state Feed loop performs zero heap
// allocations, on every format and on both markup paths.
TEST(StreamingSelector, FeedDoesNotAllocateInSteadyState) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa plain = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  TagDfa blind = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/true);
  Rng rng(29);
  Tree tree = RandomTree(500, 3, 0.5, &rng);
  EventStream events = Encode(tree);

  TagDfaMachine plain_machine(&plain);
  TagDfaMachine blind_machine(&blind);
  OpaqueMachine opaque(&plain_machine);

  struct Case {
    const char* name;
    StreamMachine* machine;
    StreamingSelector::Format format;
    std::string text;
  };
  std::vector<Case> cases = {
      {"markup-fused", &plain_machine,
       StreamingSelector::Format::kCompactMarkup,
       ToCompactMarkup(alphabet, events)},
      {"markup-generic", &opaque, StreamingSelector::Format::kCompactMarkup,
       ToCompactMarkup(alphabet, events)},
      {"xml", &plain_machine, StreamingSelector::Format::kXmlLite,
       ToXmlLite(alphabet, events)},
      {"term", &blind_machine, StreamingSelector::Format::kCompactTerm,
       ToCompactTerm(alphabet, events)},
  };
  for (const Case& c : cases) {
    StreamingSelector selector(c.machine, c.format, &alphabet);
    auto feed_all = [&] {
      selector.Reset();
      for (size_t i = 0; i < c.text.size(); i += 7) {
        ASSERT_TRUE(selector.Feed(std::string_view(c.text).substr(i, 7)))
            << c.name << ": " << selector.error();
      }
      ASSERT_TRUE(selector.Finish()) << c.name << ": " << selector.error();
    };
    feed_all();  // warm-up: label stack reaches its steady-state capacity
    int64_t before = g_heap_allocations.load(std::memory_order_relaxed);
    feed_all();
    int64_t after = g_heap_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0)
        << c.name << " allocated during steady-state Feed";
    EXPECT_GT(selector.nodes(), 0) << c.name;
  }
}

// Satellite regression: an XML-lite name may use the full tag-length
// budget; the '/' of the closing form must not eat into it.
TEST(StreamingSelector, XmlLiteClosingSlashDoesNotCountTowardTagLength) {
  Alphabet alphabet;
  std::string name(StreamingSelector::kMaxTagBytes, 'k');
  alphabet.Intern(name);
  Dfa dfa = CompileRegex(".*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine, StreamingSelector::Format::kXmlLite,
                             &alphabet);
  std::string text = "<" + name + "></" + name + ">";
  EXPECT_TRUE(selector.Feed(text) && selector.Finish()) << selector.error();
  EXPECT_EQ(selector.nodes(), 1);

  // One byte over the budget is rejected, opening and closing alike.
  std::string too_long(StreamingSelector::kMaxTagBytes + 1, 'k');
  selector.Reset();
  EXPECT_FALSE(selector.Feed("<" + too_long + ">"));
  EXPECT_EQ(selector.stream_error().code, StreamErrorCode::kTagTooLong);
  EXPECT_NE(selector.error().find("kTagTooLong"), std::string::npos);
}

TEST(StreamingSelector, StreamStatsCountTheRun) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine,
                             StreamingSelector::Format::kCompactMarkup,
                             &alphabet);
  ASSERT_TRUE(selector.Feed("a bB"));  // split mid-document on purpose
  ASSERT_TRUE(selector.Feed("bBA \n"));
  ASSERT_TRUE(selector.Finish());
  StreamStats stats = selector.stats();
  EXPECT_EQ(stats.bytes_fed, 9);  // whitespace included
  EXPECT_EQ(stats.chunks_fed, 2);  // two Feed calls
  EXPECT_EQ(stats.events, 6);      // 3 opens + 3 closes
  EXPECT_EQ(stats.max_depth, 2);
  EXPECT_EQ(stats.matches, selector.matches());
  EXPECT_EQ(stats.error_offset, -1);
}

TEST(StreamingSelector, StatsResetBetweenDocuments) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine,
                             StreamingSelector::Format::kCompactMarkup,
                             &alphabet);
  ASSERT_TRUE(selector.Feed("a bB"));
  ASSERT_TRUE(selector.Feed("A"));
  ASSERT_TRUE(selector.Finish());
  ASSERT_GT(selector.stats().bytes_fed, 0);
  ASSERT_GT(selector.stats().chunks_fed, 0);

  // Reset must zero every counter so per-document stats never bleed into
  // the next stream on a reused selector.
  selector.Reset();
  StreamStats cleared = selector.stats();
  EXPECT_EQ(cleared.bytes_fed, 0);
  EXPECT_EQ(cleared.chunks_fed, 0);
  EXPECT_EQ(cleared.events, 0);
  EXPECT_EQ(cleared.max_depth, 0);
  EXPECT_EQ(cleared.matches, 0);
  EXPECT_EQ(cleared.errors_recovered, 0);
  EXPECT_EQ(cleared.subtrees_skipped, 0);
  EXPECT_EQ(cleared.error_offset, -1);
  EXPECT_TRUE(selector.stream_error().ok());
  EXPECT_TRUE(selector.recovered_errors().empty());
  EXPECT_FALSE(selector.failed());

  // A second document starts counting from scratch.
  ASSERT_TRUE(selector.Feed("aA"));
  ASSERT_TRUE(selector.Finish());
  StreamStats second = selector.stats();
  EXPECT_EQ(second.bytes_fed, 2);
  EXPECT_EQ(second.chunks_fed, 1);
  EXPECT_EQ(second.events, 2);
  EXPECT_EQ(second.max_depth, 1);

  // Reset also clears a failed run (error offset included).
  EXPECT_FALSE(selector.Feed("?"));
  ASSERT_GE(selector.stats().error_offset, 0);
  selector.Reset();
  EXPECT_EQ(selector.stats().error_offset, -1);
  EXPECT_EQ(selector.stats().chunks_fed, 0);
  EXPECT_TRUE(selector.error().empty());
}

TEST(StreamingSelector, ChunksFedNotCountedAfterFailure) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine,
                             StreamingSelector::Format::kCompactMarkup,
                             &alphabet);
  EXPECT_FALSE(selector.Feed("?"));
  EXPECT_EQ(selector.stats().chunks_fed, 1);  // the failing chunk counts
  EXPECT_FALSE(selector.Feed("a"));           // rejected outright: not fed
  EXPECT_EQ(selector.stats().chunks_fed, 1);
}

// Long whitespace runs exercise the bulk SIMD/SWAR skip in every format,
// including runs split across chunk boundaries at every offset.
TEST(StreamingSelector, BulkWhitespaceSkipMatchesByteAtATime) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*", alphabet);
  std::string pad(200, ' ');
  pad[67] = '\n';
  pad[133] = '\t';
  const std::string markup = "a" + pad + "b" + pad + "B" + pad + "A";
  const std::string xml =
      "<a>" + pad + "<b>" + pad + "</b>" + pad + "</a>";
  const std::string term = "a{" + pad + "b{" + pad + "}" + pad + "}";
  struct Case {
    StreamingSelector::Format format;
    const std::string* text;
  } cases[] = {
      {StreamingSelector::Format::kCompactMarkup, &markup},
      {StreamingSelector::Format::kXmlLite, &xml},
      {StreamingSelector::Format::kCompactTerm, &term},
  };
  for (const Case& c : cases) {
    StackQueryEvaluator machine(&dfa);
    StreamingSelector selector(&machine, c.format, &alphabet);
    for (size_t chunk : {1u, 7u, 64u, 4096u}) {
      selector.Reset();
      for (size_t i = 0; i < c.text->size(); i += chunk) {
        ASSERT_TRUE(
            selector.Feed(std::string_view(*c.text).substr(i, chunk)))
            << selector.error();
      }
      ASSERT_TRUE(selector.Finish()) << selector.error();
      EXPECT_EQ(selector.nodes(), 2);
      EXPECT_EQ(selector.stats().events, 4);
    }
  }
}

TEST(StreamingSelector, ErrorsCarryTheByteOffset) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine,
                             StreamingSelector::Format::kCompactMarkup,
                             &alphabet);
  ASSERT_TRUE(selector.Feed("ab"));
  EXPECT_FALSE(selector.Feed("B?A"));  // offset 3 in the overall stream
  EXPECT_EQ(selector.stats().error_offset, 3);
  EXPECT_NE(selector.error().find("at byte 3"), std::string::npos)
      << selector.error();
  // The first error wins; later feeds cannot overwrite it.
  EXPECT_FALSE(selector.Feed("?"));
  EXPECT_EQ(selector.stats().error_offset, 3);
}

// Satellite (a): once a run has failed, Feed and Finish are no-ops that
// return false and preserve the original StreamError verbatim.
TEST(StreamingSelector, FeedAndFinishAfterErrorAreNoOps) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine,
                             StreamingSelector::Format::kCompactMarkup,
                             &alphabet);
  ASSERT_TRUE(selector.Feed("ab"));
  ASSERT_FALSE(selector.Feed("c"));  // unknown label at offset 2
  const StreamError first = selector.stream_error();
  ASSERT_EQ(first.code, StreamErrorCode::kUnknownLabel);
  ASSERT_EQ(first.offset, 2);
  const StreamStats frozen = selector.stats();
  const std::string rendered = selector.error();

  // Feeding valid or invalid bytes afterwards changes nothing observable.
  EXPECT_FALSE(selector.Feed("BA"));
  EXPECT_FALSE(selector.Feed("?"));
  EXPECT_FALSE(selector.Feed(""));
  EXPECT_FALSE(selector.Finish());
  EXPECT_FALSE(selector.Finish());  // idempotent
  EXPECT_EQ(selector.stream_error(), first);
  EXPECT_EQ(selector.error(), rendered);
  StreamStats after = selector.stats();
  EXPECT_EQ(after.bytes_fed, frozen.bytes_fed);
  EXPECT_EQ(after.chunks_fed, frozen.chunks_fed);
  EXPECT_EQ(after.events, frozen.events);
  EXPECT_EQ(after.matches, frozen.matches);
  EXPECT_EQ(after.error_offset, frozen.error_offset);

  // Reset rearms the selector for a fresh, successful run.
  selector.Reset();
  EXPECT_TRUE(selector.Feed("aA"));
  EXPECT_TRUE(selector.Finish());
  EXPECT_TRUE(selector.stream_error().ok());
}

// A Finish-time failure (truncated document) is just as final as a
// Feed-time failure.
TEST(StreamingSelector, FeedAfterFailedFinishIsRejected) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine,
                             StreamingSelector::Format::kCompactMarkup,
                             &alphabet);
  ASSERT_TRUE(selector.Feed("ab"));
  ASSERT_FALSE(selector.Finish());  // two opens still pending
  const StreamError first = selector.stream_error();
  EXPECT_EQ(first.code, StreamErrorCode::kTruncatedDocument);
  EXPECT_EQ(first.offset, 2);
  EXPECT_FALSE(selector.Feed("BA"));  // too late: the run is over
  EXPECT_FALSE(selector.Finish());
  EXPECT_EQ(selector.stream_error(), first);
}

TEST(StreamingSelector, WhitespaceIsIgnoredBetweenTags) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine,
                             StreamingSelector::Format::kCompactMarkup,
                             &alphabet);
  ASSERT_TRUE(selector.Feed("a \n b"));
  ASSERT_TRUE(selector.Feed("B\tA"));
  EXPECT_TRUE(selector.Finish());
  EXPECT_EQ(selector.nodes(), 2);
}

}  // namespace
}  // namespace sst
