#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "dra/streaming.h"
#include "dra/tag_dfa.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

// Splits `text` into chunks of the given size and feeds them one by one,
// exercising every possible tag split across chunk boundaries.
bool FeedChunked(StreamingSelector* selector, const std::string& text,
                 size_t chunk_size) {
  for (size_t i = 0; i < text.size(); i += chunk_size) {
    if (!selector->Feed(std::string_view(text).substr(i, chunk_size))) {
      return false;
    }
  }
  return selector->Finish();
}

TEST(StreamingSelector, CompactMarkupMatchesBatchEvaluation) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  Rng rng(3);
  for (const Tree& tree : testing::SampleTrees(60, 3, &rng)) {
    std::string text = ToCompactMarkup(alphabet, Encode(tree));
    std::vector<bool> expected = SelectNodes(dfa, tree);
    int64_t expected_matches = 0;
    for (bool b : expected) expected_matches += b ? 1 : 0;
    for (size_t chunk_size : {size_t{1}, size_t{3}, text.size()}) {
      TagDfaMachine machine(&evaluator);
      StreamingSelector selector(
          &machine, StreamingSelector::Format::kCompactMarkup, &alphabet);
      ASSERT_TRUE(FeedChunked(&selector, text, chunk_size))
          << selector.error();
      EXPECT_EQ(selector.matches(), expected_matches);
      EXPECT_EQ(selector.nodes(), tree.size());
      EXPECT_TRUE(selector.document_complete());
    }
  }
}

TEST(StreamingSelector, XmlLiteHandlesTagsSplitAcrossChunks) {
  Alphabet alphabet;
  alphabet.Intern("doc");
  alphabet.Intern("item");
  Dfa dfa = CompileRegex(".*", alphabet);  // select every node
  Dfa every = dfa;
  StackQueryEvaluator machine(&every);
  StreamingSelector selector(&machine, StreamingSelector::Format::kXmlLite,
                             &alphabet);
  std::string text = "<doc><item></item><item></item></doc>";
  for (size_t chunk_size = 1; chunk_size <= text.size(); ++chunk_size) {
    selector.Reset();
    ASSERT_TRUE(FeedChunked(&selector, text, chunk_size))
        << chunk_size << ": " << selector.error();
    EXPECT_EQ(selector.nodes(), 3);
    EXPECT_EQ(selector.matches(), 3);
  }
}

TEST(StreamingSelector, TermEncodingDrivesBlindMachines) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/true);
  Rng rng(5);
  for (const Tree& tree : testing::SampleTrees(40, 3, &rng)) {
    std::string text = ToCompactTerm(alphabet, Encode(tree));
    std::vector<bool> expected = SelectNodes(dfa, tree);
    int64_t expected_matches = 0;
    for (bool b : expected) expected_matches += b ? 1 : 0;
    TagDfaMachine machine(&evaluator);
    StreamingSelector selector(
        &machine, StreamingSelector::Format::kCompactTerm, &alphabet);
    ASSERT_TRUE(FeedChunked(&selector, text, 2)) << selector.error();
    EXPECT_EQ(selector.matches(), expected_matches);
  }
}

TEST(StreamingSelector, MatchCallbackReportsDocumentOrderIndices) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);  // select nodes on all-a paths
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine,
                             StreamingSelector::Format::kCompactMarkup,
                             &alphabet);
  std::vector<int64_t> reported;
  selector.set_match_callback(
      [&](int64_t index, Symbol) { reported.push_back(index); });
  ASSERT_TRUE(selector.Feed("aabBAbBA"));  // a( a(b), b )
  ASSERT_TRUE(selector.Finish());
  EXPECT_EQ(reported, (std::vector<int64_t>{0, 1}));
}

TEST(StreamingSelector, MalformedInputsAreRejected) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);

  auto reject = [&](StreamingSelector::Format format, const char* text) {
    StackQueryEvaluator machine(&dfa);
    StreamingSelector selector(&machine, format, &alphabet);
    bool fed = selector.Feed(text);
    bool finished = fed && selector.Finish();
    EXPECT_FALSE(finished) << text;
    EXPECT_FALSE(selector.error().empty()) << text;
  };

  using Format = StreamingSelector::Format;
  reject(Format::kCompactMarkup, "aB");     // mismatched close
  reject(Format::kCompactMarkup, "a");      // unclosed
  reject(Format::kCompactMarkup, "A");      // close without open
  reject(Format::kCompactMarkup, "aAbB");   // two roots
  reject(Format::kCompactMarkup, "x");      // unknown label
  reject(Format::kCompactMarkup, "a?A");    // garbage byte
  reject(Format::kXmlLite, "<a><b></a></b>");  // improper nesting
  reject(Format::kXmlLite, "<a>");             // truncated document
  reject(Format::kXmlLite, "<a></a><!");       // trailing garbage
  reject(Format::kXmlLite, "<zzz></zzz>");     // outside alphabet
  reject(Format::kCompactTerm, "a{");          // unclosed
  reject(Format::kCompactTerm, "}");           // close without open
  reject(Format::kCompactTerm, "a}");          // label without '{'
}

TEST(StreamingSelector, WhitespaceIsIgnoredBetweenTags) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*", alphabet);
  StackQueryEvaluator machine(&dfa);
  StreamingSelector selector(&machine,
                             StreamingSelector::Format::kCompactMarkup,
                             &alphabet);
  ASSERT_TRUE(selector.Feed("a \n b"));
  ASSERT_TRUE(selector.Feed("B\tA"));
  EXPECT_TRUE(selector.Finish());
  EXPECT_EQ(selector.nodes(), 2);
}

}  // namespace
}  // namespace sst
