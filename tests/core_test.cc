#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/stackless.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

Alphabet Abc() { return Alphabet::FromLetters("abc"); }

TEST(Rpq, XPathAndJsonPathAgreeWithRegexForms) {
  // Example 2.12's table of equivalent formulations.
  struct Row {
    const char* xpath;
    const char* jsonpath;
    const char* regex;
  };
  const Row rows[] = {
      {"/a//b", "$.a..b", "a.*b"},
      {"/a/b", "$.a.b", "ab"},
      {"//a//b", "$..a..b", ".*a.*b"},
      {"//a/b", "$..a.b", ".*ab"},
  };
  Alphabet alphabet = Abc();
  for (const Row& row : rows) {
    Rpq from_xpath = Rpq::FromXPath(row.xpath, alphabet);
    Rpq from_jsonpath = Rpq::FromJsonPath(row.jsonpath, alphabet);
    Rpq from_regex = Rpq::FromRegex(row.regex, alphabet);
    EXPECT_TRUE(
        EquivalentDfa(from_xpath.minimal_dfa, from_regex.minimal_dfa))
        << row.xpath;
    EXPECT_TRUE(
        EquivalentDfa(from_jsonpath.minimal_dfa, from_regex.minimal_dfa))
        << row.jsonpath;
  }
}

TEST(Rpq, WildcardSteps) {
  Alphabet alphabet = Abc();
  Rpq q = Rpq::FromXPath("/*//b", alphabet);
  Rpq r = Rpq::FromRegex(". .*b", alphabet);
  EXPECT_TRUE(EquivalentDfa(q.minimal_dfa, r.minimal_dfa));
}

TEST(Compile, PicksTheStrongestEvaluatorPerTheorems) {
  Alphabet alphabet = Abc();
  // Example 2.12: registerless / stackless / stackless / baseline.
  EXPECT_EQ(CompileQuery(Rpq::FromXPath("/a//b", alphabet),
                         StreamEncoding::kMarkup)
                .kind,
            EvaluatorKind::kRegisterless);
  EXPECT_EQ(
      CompileQuery(Rpq::FromXPath("/a/b", alphabet), StreamEncoding::kMarkup)
          .kind,
      EvaluatorKind::kStackless);
  EXPECT_EQ(CompileQuery(Rpq::FromXPath("//a//b", alphabet),
                         StreamEncoding::kMarkup)
                .kind,
            EvaluatorKind::kStackless);
  EXPECT_EQ(
      CompileQuery(Rpq::FromXPath("//a/b", alphabet), StreamEncoding::kMarkup)
          .kind,
      EvaluatorKind::kStackBaseline);
}

TEST(Compile, StackFallbackCanBeDisabled) {
  Alphabet alphabet = Abc();
  CompiledQuery compiled =
      CompileQuery(Rpq::FromXPath("//a/b", alphabet), StreamEncoding::kMarkup,
                   /*allow_stack_fallback=*/false);
  EXPECT_FALSE(compiled.exact);
  EXPECT_EQ(compiled.machine, nullptr);
  EXPECT_FALSE(compiled.classification.QueryStackless());
}

TEST(Compile, AllCompiledQueriesAreExactOnRandomTrees) {
  Alphabet alphabet = Abc();
  Rng rng(401);
  for (const char* xpath : {"/a//b", "/a/b", "//a//b", "//a/b", "/b/*//c"}) {
    for (StreamEncoding encoding :
         {StreamEncoding::kMarkup, StreamEncoding::kTerm}) {
      Rpq rpq = Rpq::FromXPath(xpath, alphabet);
      CompiledQuery compiled = CompileQuery(rpq, encoding);
      ASSERT_TRUE(compiled.exact);
      for (const Tree& tree : testing::SampleTrees(60, 3, &rng)) {
        ASSERT_EQ(RunQueryOnTree(compiled.machine.get(), tree,
                                 encoding == StreamEncoding::kTerm),
                  SelectNodes(rpq.minimal_dfa, tree))
            << xpath;
      }
    }
  }
}

TEST(Compile, ExistsAndForallAreExact) {
  Alphabet alphabet = Abc();
  Rng rng(403);
  for (const char* regex : {"a.*b", "ab", ".*a.*b", ".*ab", "ab|abc"}) {
    Rpq rpq = Rpq::FromRegex(regex, alphabet);
    for (StreamEncoding encoding :
         {StreamEncoding::kMarkup, StreamEncoding::kTerm}) {
      CompiledQuery exists = CompileExists(rpq, encoding);
      CompiledQuery forall = CompileForall(rpq, encoding);
      ASSERT_TRUE(exists.exact);
      ASSERT_TRUE(forall.exact);
      bool term = encoding == StreamEncoding::kTerm;
      for (const Tree& tree : testing::SampleTrees(50, 3, &rng)) {
        EventStream events = Encode(tree);
        if (term) {
          for (TagEvent& event : events) {
            if (!event.open) event.symbol = -1;
          }
        }
        ASSERT_EQ(RunAcceptor(exists.machine.get(), events),
                  TreeInExists(rpq.minimal_dfa, tree))
            << regex;
        ASSERT_EQ(RunAcceptor(forall.machine.get(), events),
                  TreeInForall(rpq.minimal_dfa, tree))
            << regex;
      }
    }
  }
}

TEST(Compile, ExistsUsesSynopsisWhenEFlat) {
  Alphabet alphabet = Abc();
  // Co-finite language: E-flat, so EL gets the registerless synopsis
  // automaton even though the language is not almost-reversible.
  Rpq rpq = Rpq::FromRegex("(.|~)* ", alphabet);  // all words: trivially E-flat
  CompiledQuery exists = CompileExists(rpq, StreamEncoding::kMarkup);
  EXPECT_EQ(exists.kind, EvaluatorKind::kRegisterless);

  Rpq ab = Rpq::FromRegex("ab", alphabet);  // A-flat but not E-flat
  EXPECT_EQ(CompileExists(ab, StreamEncoding::kMarkup).kind,
            EvaluatorKind::kStackless);
  EXPECT_EQ(CompileForall(ab, StreamEncoding::kMarkup).kind,
            EvaluatorKind::kRegisterless);
}

TEST(Compile, SelectWithMachineReturnsDocumentIds) {
  Alphabet alphabet = Abc();
  Rpq rpq = Rpq::FromXPath("/a//b", alphabet);
  CompiledQuery compiled = CompileQuery(rpq, StreamEncoding::kMarkup);
  Tree tree;
  int root = tree.AddRoot(0);        // a
  int b1 = tree.AddChild(root, 1);   // b   <- selected
  int c1 = tree.AddChild(root, 2);   // c
  int b2 = tree.AddChild(c1, 1);     // b   <- selected
  std::vector<int> selected =
      SelectWithMachine(compiled, tree, StreamEncoding::kMarkup);
  EXPECT_EQ(selected, (std::vector<int>{b1, b2}));
}

TEST(ExplainQueryLimits, RegisterlessQueryNeedsNoCertificate) {
  QueryLimitsReport report =
      ExplainQueryLimits(Rpq::FromXPath("/a//b", Abc()));
  EXPECT_TRUE(report.registerless);
  EXPECT_TRUE(report.stackless);
  EXPECT_FALSE(report.certificate_in_el.has_value());
  EXPECT_FALSE(report.summary.empty());
}

TEST(ExplainQueryLimits, StacklessButNotRegisterlessCarriesFig4Certificate) {
  Rpq rpq = Rpq::FromXPath("/a/b", Abc());  // ab: HAR, not AR, not E-flat
  QueryLimitsReport report = ExplainQueryLimits(rpq);
  EXPECT_FALSE(report.registerless);
  EXPECT_TRUE(report.stackless);
  ASSERT_TRUE(report.certificate_in_el.has_value());
  ASSERT_TRUE(report.certificate_out_el.has_value());
  EXPECT_TRUE(TreeInExists(rpq.minimal_dfa, *report.certificate_in_el));
  EXPECT_FALSE(TreeInExists(rpq.minimal_dfa, *report.certificate_out_el));
}

TEST(ExplainQueryLimits, NotStacklessCarriesFig5Certificate) {
  Rpq rpq = Rpq::FromXPath("//a/b", Abc());  // Γ*ab: not HAR
  QueryLimitsReport report = ExplainQueryLimits(rpq);
  EXPECT_FALSE(report.stackless);
  ASSERT_TRUE(report.certificate_in_el.has_value());
  ASSERT_TRUE(report.certificate_out_el.has_value());
  EXPECT_TRUE(TreeInExists(rpq.minimal_dfa, *report.certificate_in_el));
  EXPECT_FALSE(TreeInExists(rpq.minimal_dfa, *report.certificate_out_el));
}

}  // namespace
}  // namespace sst
