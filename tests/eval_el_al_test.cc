#include <memory>

#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "classes/syntactic_classes.h"
#include "dra/machine.h"
#include "dra/tag_dfa.h"
#include "eval/al_recognizer.h"
#include "eval/el_synopsis.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

EventStream StripCloseLabels(EventStream events) {
  for (TagEvent& event : events) {
    if (!event.open) event.symbol = -1;
  }
  return events;
}

TEST(Lemma311, CofiniteLanguageExample) {
  // Co-finite languages are E-flat (Section 3.3); take the complement of
  // {ab} (all words except ab).
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = Complement(CompileRegex("ab", alphabet));
  ASSERT_TRUE(IsEFlat(dfa));
  ElSynopsisRecognizer machine(dfa, /*blind=*/false);
  Rng rng(3);
  for (const Tree& tree : testing::SampleTrees(300, 2, &rng)) {
    ASSERT_EQ(RunAcceptor(&machine, Encode(tree)), TreeInExists(dfa, tree));
    EXPECT_FALSE(machine.hit_unexpected_case());
  }
}

TEST(Lemma311, AlmostReversibleLanguagesAreEFlatToo) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  ASSERT_TRUE(IsEFlat(dfa));
  ElSynopsisRecognizer machine(dfa, /*blind=*/false);
  Rng rng(5);
  int in_el = 0, out_el = 0;
  for (const Tree& tree : testing::SampleTrees(300, 3, &rng)) {
    bool expected = TreeInExists(dfa, tree);
    ASSERT_EQ(RunAcceptor(&machine, Encode(tree)), expected);
    (expected ? in_el : out_el) += 1;
  }
  EXPECT_GT(in_el, 0);
  EXPECT_GT(out_el, 0);
}

TEST(Lemma311, RandomEFlatLanguages) {
  Rng rng(301);
  std::vector<Dfa> languages = testing::SampleLanguages(
      30, 2, [](const Dfa& d) { return IsEFlat(d); }, &rng);
  ASSERT_GE(languages.size(), 10u);
  for (const Dfa& dfa : languages) {
    ElSynopsisRecognizer machine(dfa, /*blind=*/false);
    for (const Tree& tree : testing::SampleTrees(40, 2, &rng)) {
      ASSERT_EQ(RunAcceptor(&machine, Encode(tree)),
                TreeInExists(dfa, tree));
    }
  }
}

TEST(Lemma311, DeepTreesStressSynopsisBacktracking) {
  Rng rng(303);
  std::vector<Dfa> languages = testing::SampleLanguages(
      10, 2, [](const Dfa& d) { return IsEFlat(d); }, &rng);
  ASSERT_GE(languages.size(), 5u);
  for (const Dfa& dfa : languages) {
    ElSynopsisRecognizer machine(dfa, /*blind=*/false);
    for (int trial = 0; trial < 10; ++trial) {
      Tree tree = RandomTree(300, 2, 0.85, &rng);
      ASSERT_EQ(RunAcceptor(&machine, Encode(tree)),
                TreeInExists(dfa, tree));
    }
  }
}

TEST(Lemma312, ConstructionFailsForNonEFlatLanguage) {
  // ab is not E-flat; by Lemma 3.12 no finite automaton recognizes E{ab},
  // so in particular the synopsis automaton must err on some tree.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("ab", alphabet);
  ASSERT_FALSE(IsEFlat(dfa));
  ElSynopsisRecognizer machine(dfa, /*blind=*/false);
  Rng rng(7);
  bool found_error = false;
  for (const Tree& tree : testing::SampleTrees(500, 3, &rng)) {
    if (RunAcceptor(&machine, Encode(tree)) != TreeInExists(dfa, tree)) {
      found_error = true;
      break;
    }
  }
  EXPECT_TRUE(found_error);
}

TEST(MaterializedEl, AgreesWithTheMachine) {
  Rng rng(305);
  std::vector<Dfa> languages = testing::SampleLanguages(
      10, 2, [](const Dfa& d) { return IsEFlat(d); }, &rng);
  ASSERT_GE(languages.size(), 5u);
  for (const Dfa& dfa : languages) {
    std::optional<TagDfa> materialized =
        MaterializeElRecognizer(dfa, /*blind=*/false, 100000);
    ASSERT_TRUE(materialized.has_value());
    ElSynopsisRecognizer machine(dfa, /*blind=*/false);
    TagDfaMachine table_machine(&*materialized);
    for (const Tree& tree : testing::SampleTrees(40, 2, &rng)) {
      EventStream events = Encode(tree);
      ASSERT_EQ(RunAcceptor(&table_machine, events),
                RunAcceptor(&machine, events));
    }
  }
}

TEST(TheoremB1El, BlindSynopsisOnTermEncoding) {
  Rng rng(307);
  std::vector<Dfa> languages = testing::SampleLanguages(
      20, 2, [](const Dfa& d) { return IsBlindEFlat(d); }, &rng);
  ASSERT_GE(languages.size(), 8u);
  for (const Dfa& dfa : languages) {
    ElSynopsisRecognizer machine(dfa, /*blind=*/true);
    for (const Tree& tree : testing::SampleTrees(40, 2, &rng)) {
      ASSERT_EQ(RunAcceptor(&machine, StripCloseLabels(Encode(tree))),
                TreeInExists(dfa, tree));
    }
  }
}

TEST(TheoremB1El, BlindMaterializationIgnoresClosingLabels) {
  Rng rng(309);
  std::vector<Dfa> languages = testing::SampleLanguages(
      5, 2, [](const Dfa& d) { return IsBlindEFlat(d); }, &rng);
  ASSERT_GE(languages.size(), 2u);
  for (const Dfa& dfa : languages) {
    std::optional<TagDfa> materialized =
        MaterializeElRecognizer(dfa, /*blind=*/true, 100000);
    ASSERT_TRUE(materialized.has_value());
    EXPECT_TRUE(materialized->ClosingSymbolInvariant());
  }
}

TEST(Theorem32Al, ForallRecognizerMatchesGroundTruth) {
  Rng rng(311);
  std::vector<Dfa> languages = testing::SampleLanguages(
      25, 2, [](const Dfa& d) { return IsAFlat(d); }, &rng);
  ASSERT_GE(languages.size(), 10u);
  for (const Dfa& dfa : languages) {
    std::unique_ptr<StreamMachine> machine =
        BuildForallRecognizer(dfa, /*blind=*/false);
    for (const Tree& tree : testing::SampleTrees(40, 2, &rng)) {
      ASSERT_EQ(RunAcceptor(machine.get(), Encode(tree)),
                TreeInForall(dfa, tree));
    }
  }
}

TEST(Theorem32Al, FiniteLanguageForallExample) {
  // Path DTD flavour: all branches must be labelled ab or abc.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("ab|abc", alphabet);
  ASSERT_TRUE(IsAFlat(dfa));  // finite language
  std::unique_ptr<StreamMachine> machine =
      BuildForallRecognizer(dfa, /*blind=*/false);
  std::optional<EventStream> good =
      ParseCompactMarkup(alphabet, "abBbcCBA");
  ASSERT_TRUE(good.has_value());
  EXPECT_TRUE(RunAcceptor(machine.get(), *good));
  std::optional<EventStream> bad = ParseCompactMarkup(alphabet, "abaABA");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(RunAcceptor(machine.get(), *bad));
}

TEST(Theorem32Al, MaterializedForallAgrees) {
  Rng rng(313);
  std::vector<Dfa> languages = testing::SampleLanguages(
      8, 2, [](const Dfa& d) { return IsAFlat(d); }, &rng);
  ASSERT_GE(languages.size(), 4u);
  for (const Dfa& dfa : languages) {
    std::optional<TagDfa> materialized =
        MaterializeForallRecognizer(dfa, /*blind=*/false, 100000);
    ASSERT_TRUE(materialized.has_value());
    TagDfaMachine machine(&*materialized);
    for (const Tree& tree : testing::SampleTrees(40, 2, &rng)) {
      ASSERT_EQ(RunAcceptor(&machine, Encode(tree)),
                TreeInForall(dfa, tree));
    }
  }
}

}  // namespace
}  // namespace sst
