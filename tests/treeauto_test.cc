#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "dra/dra.h"
#include "dra/machine.h"
#include "eval/stackless_query.h"
#include "test_util.h"
#include "treeauto/restricted_to_tree_automaton.h"
#include "treeauto/rpqness.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

// A restricted DRA whose tree language is convenient to check: the
// materialized Lemma 3.8 evaluator wrapped as an acceptor accepts ⟨T⟩ iff
// its final control state is accepting — for acceptance testing we instead
// use the registerless 'some a' automaton and a genuinely register-using
// machine below.
TEST(Proposition23, RegisterlessEmbeddingAgreesEverywhere) {
  // Registerless DRA: 'contains an a-labelled node'.
  TagDfa some_a = TagDfa::Create(2, 2);
  some_a.initial = 0;
  some_a.accepting = {false, true};
  some_a.SetNextOpen(0, 0, 1);
  some_a.SetNextOpen(0, 1, 0);
  for (Symbol s = 0; s < 2; ++s) {
    some_a.SetNextClose(0, s, 0);
    some_a.SetNextOpen(1, s, 1);
    some_a.SetNextClose(1, s, 1);
  }
  Dra dra = DraFromTagDfa(some_a);
  RestrictedDraTreeAutomaton nta(dra);
  DraRunner runner(&dra);
  Rng rng(3);
  for (const Tree& tree : testing::SampleTrees(200, 2, &rng)) {
    EXPECT_EQ(nta.Accepts(tree), RunAcceptor(&runner, Encode(tree)));
  }
}

// Example 2.5's machine for H_L with L = 'contains an a': the register
// pins the root's depth, and the automaton watches closing tags at that
// depth — the labels of the root's children. Restricted (every comparison
// reading 'greater' reloads) and genuinely register-using.
Dra BuildExample25SomeAChild() {
  constexpr int kStart = 0, kScanning = 1, kSeen = 2;
  Dra dra = Dra::Create(3, 2, 1);
  dra.initial = kStart;
  dra.accepting = {false, false, true};
  for (Symbol s = 0; s < 2; ++s) {
    // First opening tag loads the register with depth 1.
    dra.SetAction(kStart, false, s, {-1}, /*load_mask=*/1, kScanning);
    dra.SetAction(kStart, true, s, {-1}, 0, kStart);
    dra.SetAction(kScanning, false, s, {-1}, 0, kScanning);
    // A closing tag at the pinned depth is a child of the root.
    dra.SetAction(kScanning, true, s, {Dra::kEqual}, 0,
                  s == 0 ? kSeen : kScanning);
    dra.SetAction(kScanning, true, s, {Dra::kLess}, 0, kScanning);
    dra.SetAction(kScanning, true, s, {Dra::kGreater}, 1, kScanning);
    dra.SetAction(kSeen, false, s, {-1}, 0, kSeen);
    dra.SetAction(kSeen, true, s, {Dra::kLess}, 0, kSeen);
    dra.SetAction(kSeen, true, s, {Dra::kEqual}, 0, kSeen);
    dra.SetAction(kSeen, true, s, {Dra::kGreater}, 1, kSeen);
    // Restricted also on the (unreachable) greater-codes at kStart opens.
    dra.SetAction(kStart, false, s, {Dra::kGreater}, 1, kScanning);
    dra.SetAction(kStart, true, s, {Dra::kGreater}, 1, kStart);
    dra.SetAction(kScanning, false, s, {Dra::kGreater}, 1, kScanning);
    dra.SetAction(kSeen, false, s, {Dra::kGreater}, 1, kSeen);
  }
  return dra;
}

TEST(Proposition23, RegisterUsingDraAgreesEverywhere) {
  Dra dra = BuildExample25SomeAChild();
  ASSERT_TRUE(IsRestricted(dra));
  RestrictedDraTreeAutomaton nta(dra);
  DraRunner runner(&dra);
  auto oracle = [](const Tree& tree) {
    for (int c = tree.node(tree.root()).first_child; c >= 0;
         c = tree.node(c).next_sibling) {
      if (tree.label(c) == 0) return true;
    }
    return false;
  };
  Rng rng(5);
  int accepted = 0, rejected = 0;
  for (const Tree& tree : EnumerateTrees(5, 2)) {
    bool direct = RunAcceptor(&runner, Encode(tree));
    ASSERT_EQ(direct, oracle(tree));
    ASSERT_EQ(nta.Accepts(tree), direct);
    (direct ? accepted : rejected) += 1;
  }
  for (int trial = 0; trial < 60; ++trial) {
    Tree tree = RandomTree(1 + static_cast<int>(rng.NextBelow(15)), 2,
                           rng.NextDouble(), &rng);
    ASSERT_EQ(nta.Accepts(tree), RunAcceptor(&runner, Encode(tree)));
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

TEST(Proposition23, MaterializedStacklessEvaluatorAgreesToo) {
  // The materialized Lemma 3.8 machine for Γ*aΓ*b uses registers and is
  // restricted; Proposition 2.3's tree automaton must agree with it on
  // every tree (its accepted language happens to be empty — acceptance is
  // sampled at opening tags for queries — but agreement is the point).
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  std::optional<Dra> dra =
      MaterializeStacklessQueryDra(dfa, /*blind=*/false, 50000);
  ASSERT_TRUE(dra.has_value());
  ASSERT_TRUE(IsRestricted(*dra));
  ASSERT_GT(dra->num_registers, 0);
  RestrictedDraTreeAutomaton nta(*dra);
  DraRunner runner(&*dra);
  for (const Tree& tree : EnumerateTrees(5, 2)) {
    ASSERT_EQ(nta.Accepts(tree), RunAcceptor(&runner, Encode(tree)));
  }
}

TEST(Proposition23, DiagnosticsAvailable) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("ab", alphabet);
  std::optional<Dra> dra =
      MaterializeStacklessQueryDra(dfa, /*blind=*/false, 50000);
  ASSERT_TRUE(dra.has_value());
  RestrictedDraTreeAutomaton nta(*dra);
  EXPECT_GT(nta.NumCandidateStates(), 0);
}

TEST(Proposition213, ChainDfaRecoversThePathLanguage) {
  // Proposition 2.11's argument: over pure descents the DRA is a DFA; for
  // the Lemma 3.8 evaluator of L, that DFA recognizes L again.
  Alphabet alphabet = Alphabet::FromLetters("ab");
  for (const char* pattern : {"ab", ".*a.*b", "a.*b"}) {
    Dfa dfa = CompileRegex(pattern, alphabet);
    std::optional<Dra> dra =
        MaterializeStacklessQueryDra(dfa, /*blind=*/false, 50000);
    ASSERT_TRUE(dra.has_value()) << pattern;
    Dfa chain = ExtractChainDfa(*dra);
    EXPECT_TRUE(EquivalentDfa(chain, dfa)) << pattern;
  }
}

TEST(Proposition213, StacklessEvaluatorsAreRpqs) {
  // The query realized by the Lemma 3.8 machine for a HAR language is Q_L —
  // an RPQ — so the checker must find no counterexample.
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*a.*b", alphabet);
  std::optional<Dra> dra =
      MaterializeStacklessQueryDra(dfa, /*blind=*/false, 50000);
  ASSERT_TRUE(dra.has_value());
  RpqnessResult result = CheckRpqness(*dra, 6);
  EXPECT_TRUE(result.is_rpq_up_to_bound);
  EXPECT_FALSE(result.counterexample.has_value());
}

TEST(Proposition213, NonPathQueryDetected) {
  // A DRA realizing a sibling-sensitive query is not an RPQ: select every
  // node if an 'a' has been seen anywhere before (document order), which
  // breaks invariance under sibling order and cannot be a path query.
  TagDfa seen_a = TagDfa::Create(2, 2);
  seen_a.initial = 0;
  seen_a.accepting = {false, true};
  seen_a.SetNextOpen(0, 0, 1);
  seen_a.SetNextOpen(0, 1, 0);
  for (Symbol s = 0; s < 2; ++s) {
    seen_a.SetNextClose(0, s, 0);
    seen_a.SetNextOpen(1, s, 1);
    seen_a.SetNextClose(1, s, 1);
  }
  Dra dra = DraFromTagDfa(seen_a);
  RpqnessResult result = CheckRpqness(dra, 5);
  EXPECT_FALSE(result.is_rpq_up_to_bound);
  ASSERT_TRUE(result.counterexample.has_value());
  // The counterexample is a concrete tree where the DRA's selections
  // disagree with every path query's.
  DraRunner runner(&dra);
  EXPECT_NE(RunQueryOnTree(&runner, *result.counterexample),
            SelectNodes(result.candidate_language, *result.counterexample));
}

}  // namespace
}  // namespace sst
