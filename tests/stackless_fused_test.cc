#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "base/rng.h"
#include "dra/byte_dra_runner.h"
#include "dra/stream_error.h"
#include "dra/streaming.h"
#include "engine/query_plan.h"
#include "engine/session.h"
#include "query/rpq.h"
#include "test_util.h"
#include "testing/fault_injection.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

// The stackless fused tier end to end: QueryPlan materializes the
// Lemma 3.8 machine into a restricted DRA, flattens it to a byte table
// (ByteDraRunner), and Sessions scan on the kFusedDraTable rung. Every
// test here pins the fused path against a slower independent oracle.

std::shared_ptr<const QueryPlan> CompileXPath(const std::string& xpath,
                                              const Alphabet& alphabet,
                                              PlanOptions options = {}) {
  return QueryPlan::Compile(Rpq::FromXPath(xpath, alphabet), options);
}

// Stackless queries over {a, b, c} whose plans carry the fused DRA rung,
// filtered by verdict so the suite never depends on the classification of
// any one query shape.
std::vector<std::string> StacklessFusedXPaths(const Alphabet& alphabet) {
  std::vector<std::string> xpaths;
  for (const char* xpath : {"/a/b", "/b/*//c", "/a/b//c", "/c/a"}) {
    auto plan = CompileXPath(xpath, alphabet);
    if (plan->kind() == EvaluatorKind::kStackless &&
        plan->fused_dra() != nullptr) {
      xpaths.push_back(xpath);
    }
  }
  return xpaths;
}

int64_t GroundTruthCount(const Dfa& dfa, const Tree& tree) {
  int64_t selected = 0;
  for (bool b : SelectNodes(dfa, tree)) selected += static_cast<int64_t>(b);
  return selected;
}

bool DriveChunked(StreamingSelector* selector, const std::string& text,
                  size_t chunk) {
  selector->Reset();
  bool ok = true;
  for (size_t i = 0; i < text.size() && ok; i += chunk) {
    ok = selector->Feed(std::string_view(text).substr(i, chunk));
  }
  if (ok) ok = selector->Finish();
  return ok;
}

// Satellite matrix: 30 random trees x {markup, xml-lite, term} x chunk
// splits {1, 3, 16}. On compact markup the session runs the fused DRA
// rung; the other formats exercise the same plan on the generic machine.
// All of them must report exactly the ground-truth selection count.
TEST(StacklessFused, ParityAcrossFormatsAndChunkings) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::string> xpaths = StacklessFusedXPaths(alphabet);
  ASSERT_GE(xpaths.size(), 2u);

  struct FormatCase {
    const char* name;
    StreamEncoding encoding;
    StreamFormat format;
  };
  const FormatCase kFormats[] = {
      {"markup", StreamEncoding::kMarkup, StreamFormat::kCompactMarkup},
      {"xml-lite", StreamEncoding::kMarkup, StreamFormat::kXmlLite},
      {"term", StreamEncoding::kTerm, StreamFormat::kCompactTerm},
  };

  Rng rng(131);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);
  for (const std::string& xpath : xpaths) {
    for (const FormatCase& format_case : kFormats) {
      PlanOptions options;
      options.encoding = format_case.encoding;
      options.format = format_case.format;
      auto plan = CompileXPath(xpath, alphabet, options);
      ASSERT_TRUE(plan->exact()) << xpath;
      const bool fused_tier =
          format_case.format == StreamFormat::kCompactMarkup &&
          format_case.encoding == StreamEncoding::kMarkup;
      EXPECT_EQ(plan->fused_dra() != nullptr, fused_tier)
          << xpath << " " << format_case.name;
      Session session(plan);
      if (fused_tier) {
        EXPECT_EQ(session.selector().active_tier(),
                  StreamingSelector::Tier::kFusedDraTable);
      }
      for (const Tree& tree : trees) {
        EventStream events = Encode(tree);
        std::string text;
        switch (format_case.format) {
          case StreamFormat::kCompactMarkup:
            text = ToCompactMarkup(alphabet, events);
            break;
          case StreamFormat::kXmlLite:
            text = ToXmlLite(alphabet, events);
            break;
          case StreamFormat::kCompactTerm:
            text = ToCompactTerm(alphabet, events);
            break;
        }
        int64_t want = GroundTruthCount(plan->minimal_dfa(), tree);
        for (size_t chunk : {size_t{1}, size_t{3}, size_t{16}}) {
          ASSERT_TRUE(DriveChunked(&session.selector(), text, chunk))
              << format_case.name << ": " << text;
          EXPECT_EQ(session.matches(), want)
              << xpath << " " << format_case.name << " chunk " << chunk
              << ": " << text;
        }
      }
    }
  }
}

// Register stress: deep chains (trees of depth in the hundreds) force the
// depth registers through long load/compare sequences and repeated SCC
// re-entries; the fused table must track the interpreter's answer exactly.
TEST(StacklessFused, DeepChainRegisterStress) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::string> xpaths = StacklessFusedXPaths(alphabet);
  ASSERT_GE(xpaths.size(), 2u);
  Rng rng(137);
  for (const std::string& xpath : xpaths) {
    auto plan = CompileXPath(xpath, alphabet);
    ASSERT_NE(plan->fused_dra(), nullptr) << xpath;
    Session session(plan);
    for (int trial = 0; trial < 25; ++trial) {
      Tree tree = RandomTree(300, 3, 0.92, &rng);  // deep, chain-like
      std::string doc = ToCompactMarkup(alphabet, Encode(tree));
      int64_t want = GroundTruthCount(plan->minimal_dfa(), tree);
      ASSERT_TRUE(DriveChunked(&session.selector(), doc, 16)) << xpath;
      EXPECT_EQ(session.matches(), want) << xpath;
      // Byte-level entry points of the fused runner agree too.
      EXPECT_EQ(plan->fused_dra()->CountSelections(doc), want) << xpath;
    }
  }
}

// Recovery matrix: StreamLimits.max_depth x kSkipMalformedSubtree. Depth
// overflows are recoverable errors; the fused session must demote to the
// generic tier, keep scanning, and end with byte-identical stats to a
// session that ran the SAME materialized DRA on the generic tier from the
// start.
TEST(StacklessFused, MaxDepthSkipRecoveryMatchesGenericTier) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::string> xpaths = StacklessFusedXPaths(alphabet);
  ASSERT_GE(xpaths.size(), 2u);
  Rng rng(139);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);

  for (const std::string& xpath : xpaths) {
    auto plan = CompileXPath(xpath, alphabet);
    ASSERT_NE(plan->fused_dra(), nullptr) << xpath;

    Session fused_session(plan);
    // Generic reference: the same plan's machine (a DraRunner over the
    // same materialized DRA) behind a selector with no fused tables.
    std::unique_ptr<StreamMachine> reference_machine = plan->NewMachine();
    StreamingSelector generic(reference_machine.get(),
                              plan->options().format, &plan->alphabet(),
                              &plan->scanner_tables(), /*fused=*/nullptr,
                              /*fused_dra=*/nullptr);
    ASSERT_EQ(generic.active_tier(),
              StreamingSelector::Tier::kGenericMachine);

    StreamLimits limits;
    limits.max_depth = 4;
    for (StreamingSelector* selector :
         {&fused_session.selector(), &generic}) {
      selector->set_recovery_policy(RecoveryPolicy::kSkipMalformedSubtree);
      selector->set_limits(limits);
    }

    bool saw_recovery = false;
    for (const Tree& tree : trees) {
      std::string doc = ToCompactMarkup(alphabet, Encode(tree));
      for (size_t chunk : {size_t{1}, size_t{7}}) {
        bool fused_ok = DriveChunked(&fused_session.selector(), doc, chunk);
        bool generic_ok = DriveChunked(&generic, doc, chunk);
        EXPECT_EQ(fused_ok, generic_ok) << xpath << ": " << doc;
        StreamStats fused_stats = fused_session.stats();
        StreamStats generic_stats = generic.stats();
        EXPECT_EQ(fused_stats.matches, generic_stats.matches)
            << xpath << " chunk " << chunk << ": " << doc;
        EXPECT_EQ(fused_stats.errors_recovered,
                  generic_stats.errors_recovered)
            << xpath << ": " << doc;
        EXPECT_EQ(fused_stats.subtrees_skipped,
                  generic_stats.subtrees_skipped)
            << xpath << ": " << doc;
        EXPECT_EQ(fused_stats.error_offset, generic_stats.error_offset)
            << xpath << ": " << doc;
        if (fused_stats.errors_recovered > 0) {
          saw_recovery = true;
          // Recovery runs on the generic rung only: the fused session must
          // have latched the demotion for the rest of this document.
          EXPECT_EQ(fused_session.selector().active_tier(),
                    StreamingSelector::Tier::kGenericMachine);
        }
      }
    }
    EXPECT_TRUE(saw_recovery) << xpath;
  }
}

// Fail-fast error parity on faulted documents: the fused runner's
// whole-document RunValidated and the chunked fused session must report
// the same first StreamError (code + offset) and the same partial counts.
TEST(StacklessFused, RunValidatedFirstErrorMatchesSelector) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::string> xpaths = StacklessFusedXPaths(alphabet);
  ASSERT_GE(xpaths.size(), 2u);
  Rng rng(149);
  FaultInjector injector(149);

  for (const std::string& xpath : xpaths) {
    auto plan = CompileXPath(xpath, alphabet);
    ASSERT_NE(plan->fused_dra(), nullptr) << xpath;
    Session session(plan);
    for (const Tree& tree : testing::SampleTrees(30, 3, &rng)) {
      std::string doc = ToCompactMarkup(alphabet, Encode(tree));
      std::vector<std::string> inputs = {doc};
      for (int kind = 0; kind < kNumFaultKinds; ++kind) {
        std::string mutated = doc;
        injector.Apply(static_cast<FaultKind>(kind), &mutated);
        inputs.push_back(std::move(mutated));
      }
      for (const std::string& input : inputs) {
        ValidatedRun run = plan->fused_dra()->RunValidated(input);
        for (size_t chunk : {size_t{1}, size_t{16}}) {
          bool ok = DriveChunked(&session.selector(), input, chunk);
          EXPECT_EQ(ok, run.ok()) << xpath << ": " << input;
          EXPECT_EQ(session.stream_error().code, run.error.code)
              << xpath << " chunk " << chunk << ": " << input;
          EXPECT_EQ(session.stream_error().offset, run.error.offset)
              << xpath << " chunk " << chunk << ": " << input;
          EXPECT_EQ(session.matches(), run.matches)
              << xpath << " chunk " << chunk << ": " << input;
        }
      }
    }
  }
}

// The two fused rungs answer the same queries the same way when a query
// is BOTH registerless and stackless is impossible (the tiers are
// disjoint by verdict) — but the fused DRA must agree with the unfused
// interpreter plan obtained by disabling the markup byte tables via the
// xml-lite format. Counts per document, not just in aggregate.
TEST(StacklessFused, FusedAndUnfusedPlansAgreePerDocument) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::vector<std::string> xpaths = StacklessFusedXPaths(alphabet);
  ASSERT_GE(xpaths.size(), 2u);
  Rng rng(151);
  for (const std::string& xpath : xpaths) {
    auto fused_plan = CompileXPath(xpath, alphabet);
    PlanOptions xml;
    xml.format = StreamFormat::kXmlLite;
    auto unfused_plan = CompileXPath(xpath, alphabet, xml);
    ASSERT_NE(fused_plan->fused_dra(), nullptr);
    ASSERT_EQ(unfused_plan->fused_dra(), nullptr);
    Session fused_session(fused_plan);
    Session unfused_session(unfused_plan);
    for (const Tree& tree : testing::SampleTrees(25, 3, &rng)) {
      EventStream events = Encode(tree);
      std::string markup = ToCompactMarkup(alphabet, events);
      std::string xml_lite = ToXmlLite(alphabet, events);
      ASSERT_TRUE(DriveChunked(&fused_session.selector(), markup, 16));
      ASSERT_TRUE(DriveChunked(&unfused_session.selector(), xml_lite, 16));
      EXPECT_EQ(fused_session.matches(), unfused_session.matches())
          << xpath << ": " << markup;
    }
  }
}

}  // namespace
}  // namespace sst
