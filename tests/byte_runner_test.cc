#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "dra/machine.h"
#include "dra/tag_dfa.h"
#include "dra/byte_runner.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

TEST(ByteRunner, MatchesEventLevelMachine) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  ByteTagDfaRunner byte_runner(evaluator);
  TagDfaMachine event_machine(&evaluator);
  Rng rng(61);
  for (const Tree& tree : testing::SampleTrees(100, 3, &rng)) {
    EventStream events = Encode(tree);
    std::string bytes = ToCompactMarkup(alphabet, events);
    std::vector<bool> expected = RunQuery(&event_machine, events);
    int64_t expected_count = 0;
    for (bool b : expected) expected_count += b ? 1 : 0;
    EXPECT_EQ(byte_runner.CountSelections(bytes), expected_count);
    EXPECT_EQ(byte_runner.Accepts(bytes),
              RunAcceptor(&event_machine, events));
  }
}

TEST(ByteRunner, SelectionCountMatchesGroundTruth) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  ByteTagDfaRunner byte_runner(
      BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false));
  Rng rng(67);
  for (const Tree& tree : testing::SampleTrees(100, 3, &rng)) {
    std::string bytes = ToCompactMarkup(alphabet, Encode(tree));
    std::vector<bool> selected = SelectNodes(dfa, tree);
    int64_t expected = 0;
    for (bool b : selected) expected += b ? 1 : 0;
    EXPECT_EQ(byte_runner.CountSelections(bytes), expected);
  }
}

TEST(ByteStackRunner, MatchesStackEvaluatorForAnyLanguage) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(71);
  for (const char* pattern : {".*ab", "ab", "a.*b"}) {
    Dfa dfa = CompileRegex(pattern, alphabet);
    ByteStackRunner byte_runner(dfa);
    StackQueryEvaluator machine(&dfa);
    for (const Tree& tree : testing::SampleTrees(60, 3, &rng)) {
      EventStream events = Encode(tree);
      std::string bytes = ToCompactMarkup(alphabet, events);
      std::vector<bool> selected = RunQuery(&machine, events);
      int64_t expected = 0;
      for (bool b : selected) expected += b ? 1 : 0;
      EXPECT_EQ(byte_runner.CountSelections(bytes), expected) << pattern;
    }
  }
}

TEST(ByteStackRunner, ReportsPeakDepth) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  ByteStackRunner runner(dfa);
  std::string bytes(100, 'a');
  bytes += std::string(100, 'A');
  runner.CountSelections(bytes);
  EXPECT_EQ(runner.max_stack_depth(), 100u);
}

// Regression: the selection predicate used to be `byte >= 'a'`, which also
// counted '{', '|', '}', '~', and every byte >= 0x7B whenever the
// (self-looped) state happened to be accepting.
TEST(ByteRunner, JunkBytesDoNotCountSelections) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex(".*", alphabet);  // every node pre-selected
  ByteTagDfaRunner runner(
      BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false));
  const std::string clean = "abBAcC";
  EXPECT_EQ(runner.CountSelections(clean), 3);
  std::string junk = "a{b|B}A~c\x7f\xff\x80" "C";  // same tags + garbage
  EXPECT_EQ(runner.CountSelections(junk), runner.CountSelections(clean));
  // Junk alone selects nothing, whatever state it loops in.
  EXPECT_EQ(runner.CountSelections("{|}~\x7f\x80\xff"), 0);
}

// The label-driven constructor follows the alphabet instead of assuming
// labels 'a', 'b', ... in symbol order.
TEST(ByteRunner, AlphabetAwareTableFollowsTheLabels) {
  Alphabet alphabet = Alphabet::FromLetters("xyz");
  Dfa dfa = CompileRegex("x.*y", alphabet);
  ByteTagDfaRunner runner(BuildRegisterlessQueryAutomaton(dfa, false),
                          alphabet);
  Rng rng(73);
  for (const Tree& tree : testing::SampleTrees(60, 3, &rng)) {
    std::string bytes = ToCompactMarkup(alphabet, Encode(tree));
    std::vector<bool> selected = SelectNodes(dfa, tree);
    int64_t expected = 0;
    for (bool b : selected) expected += b ? 1 : 0;
    EXPECT_EQ(runner.CountSelections(bytes), expected);
  }
}

// Small machines compact the fused table to uint16_t (half the cache
// footprint); machines with >= 65536 states keep int32_t entries. Both
// storages must agree byte for byte with the event-level machine.
TEST(ByteRunner, CompactAndWideTablesAgree) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  ByteTagDfaRunner small(BuildRegisterlessQueryAutomaton(dfa, false));
  EXPECT_TRUE(small.uses_compact_table());
  EXPECT_NE(small.table16(), nullptr);
  EXPECT_EQ(small.table32(), nullptr);

  // A wide machine that embeds the small one in its low states: states
  // [0, n) of `wide` replicate `small`'s automaton, so runs agree while
  // exercising the int32 storage.
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, false);
  const int wide_states = 65536 + evaluator.num_states;
  TagDfa padded = TagDfa::Create(wide_states, evaluator.num_symbols);
  padded.initial = evaluator.initial;
  for (int q = 0; q < wide_states; ++q) {
    bool embedded = q < evaluator.num_states;
    padded.accepting[q] = embedded && evaluator.accepting[q];
    for (Symbol a = 0; a < evaluator.num_symbols; ++a) {
      padded.SetNextOpen(q, a, embedded ? evaluator.NextOpen(q, a) : q);
      padded.SetNextClose(q, a, embedded ? evaluator.NextClose(q, a) : q);
    }
  }
  ByteTagDfaRunner wide(padded);
  EXPECT_FALSE(wide.uses_compact_table());
  EXPECT_EQ(wide.table16(), nullptr);
  EXPECT_NE(wide.table32(), nullptr);

  Rng rng(79);
  for (const Tree& tree : testing::SampleTrees(40, 2, &rng)) {
    std::string bytes = ToCompactMarkup(alphabet, Encode(tree));
    EXPECT_EQ(wide.CountSelections(bytes), small.CountSelections(bytes));
    EXPECT_EQ(wide.FinalState(bytes), small.FinalState(bytes));
    EXPECT_EQ(wide.Accepts(bytes), small.Accepts(bytes));
  }
}

// Regression: a closing tag on an empty stack used to be silently skipped,
// miscounting unbalanced inputs instead of reporting them.
TEST(ByteStackRunner, UnbalancedCloseIsReported) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  ByteStackRunner runner(dfa);
  EXPECT_EQ(runner.CountSelections("A"), -1);
  EXPECT_EQ(runner.CountSelections("aAA"), -1);
  EXPECT_EQ(runner.CountSelections("aA"), 1);   // balanced: fine
  EXPECT_EQ(runner.CountSelections("aab"), 2);  // open prefix: fine
  // Failed runs never inflate the peak-depth counter past real pushes.
  ByteStackRunner fresh(dfa);
  EXPECT_EQ(fresh.CountSelections("AAAA"), -1);
  EXPECT_EQ(fresh.max_stack_depth(), 0u);
}

}  // namespace
}  // namespace sst
