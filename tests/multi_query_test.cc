#include <gtest/gtest.h>

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automata/alphabet.h"
#include "base/rng.h"
#include "dra/stream_error.h"
#include "engine/multi_query.h"
#include "engine/plan_cache.h"
#include "engine/session.h"
#include "test_util.h"
#include "testing/fault_injection.h"
#include "trees/encoding.h"

namespace sst {
namespace {

std::vector<BatchQuery> XPathBatch(std::initializer_list<const char*> texts) {
  std::vector<BatchQuery> batch;
  for (const char* text : texts) {
    batch.push_back(BatchQuery{QuerySyntax::kXPath, text});
  }
  return batch;
}

// A registerless batch over {a, b, c} (verified where a test's tier
// assertion depends on it).
std::vector<BatchQuery> RegisterlessBatch() {
  return XPathBatch({"/a//b", "/a//c", "/b//a", "/c//b"});
}

struct BatchRunRecord {
  bool ok = false;
  std::vector<int64_t> matches;
  StreamErrorCode error_code = StreamErrorCode::kNone;
  int64_t error_offset = -1;

  friend bool operator==(const BatchRunRecord&, const BatchRunRecord&) =
      default;
};

BatchRunRecord DriveBatch(BatchSession* session, const std::string& text,
                          size_t chunk_size) {
  session->Reset();
  BatchRunRecord record;
  record.ok = true;
  for (size_t i = 0; i < text.size() && record.ok; i += chunk_size) {
    record.ok = session->Feed(std::string_view(text).substr(i, chunk_size));
  }
  if (record.ok) record.ok = session->Finish();
  record.matches = session->query_matches();
  record.error_code = session->stream_error().code;
  record.error_offset = session->stream_error().offset;
  return record;
}

// The independent reference: one Session per query (each a plain
// StreamingSelector over that query's plan), driven with the same
// chunking.
BatchRunRecord DriveIndependent(const std::vector<Session*>& sessions,
                                const std::string& text, size_t chunk_size) {
  BatchRunRecord record;
  record.ok = true;
  for (Session* session : sessions) {
    session->Reset();
    bool ok = true;
    for (size_t i = 0; i < text.size() && ok; i += chunk_size) {
      ok = session->Feed(std::string_view(text).substr(i, chunk_size));
    }
    if (ok) ok = session->Finish();
    record.ok = record.ok && ok;
    record.matches.push_back(session->matches());
  }
  record.error_code = sessions.front()->stream_error().code;
  record.error_offset = sessions.front()->stream_error().offset;
  return record;
}

TEST(MultiQueryPlan, DedupsEquivalentQueriesThroughCanonicalKeys) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  PlanCache cache;
  auto plan = MultiQueryPlan::Compile(
      XPathBatch({"/a//b", " /a //b ", "//c", "/a//b"}), alphabet,
      MultiQueryOptions{}, &cache);
  EXPECT_EQ(plan->num_queries(), 4);
  EXPECT_EQ(plan->num_slots(), 2);
  EXPECT_EQ(plan->slot_of(0), plan->slot_of(1));
  EXPECT_EQ(plan->slot_of(0), plan->slot_of(3));
  EXPECT_NE(plan->slot_of(0), plan->slot_of(2));
  // Dedup happens on the canonical key BEFORE the cache lookup: exactly
  // one compilation per unique query, duplicates never touch the cache.
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);

  // Duplicates answer identically through the expansion.
  std::vector<int64_t> slot_counts = {7, 9};
  EXPECT_EQ(plan->ExpandCounts(slot_counts),
            (std::vector<int64_t>{7, 7, 9, 7}));
}

TEST(MultiQueryPlan, TierSelectionFollowsBatchVerdicts) {
  Alphabet alphabet = Alphabet::FromLetters("abc");

  auto fused = MultiQueryPlan::Compile(RegisterlessBatch(), alphabet,
                                       MultiQueryOptions{});
  EXPECT_EQ(fused->tier(), MultiTier::kFusedProduct);
  ASSERT_NE(fused->eager(), nullptr);
  EXPECT_NE(fused->eager_fused(), nullptr);
  EXPECT_EQ(fused->lazy(), nullptr);
  EXPECT_GT(fused->stats().eager_states, 0);
  EXPECT_TRUE(fused->stats().fused_byte_table);

  MultiQueryOptions lazy_options;
  lazy_options.eager_state_cap = 1;
  auto lazy = MultiQueryPlan::Compile(RegisterlessBatch(), alphabet,
                                      lazy_options);
  EXPECT_EQ(lazy->tier(), MultiTier::kLazyProduct);
  EXPECT_EQ(lazy->eager(), nullptr);
  ASSERT_NE(lazy->lazy(), nullptr);

  // A stackless query with a fused DRA joins the registerless members in
  // ONE scan: the mixed tier, registerless sub-product + DRA side-car.
  auto mixed = MultiQueryPlan::Compile(XPathBatch({"/a//b", "/a/b"}),
                                       alphabet, MultiQueryOptions{});
  EXPECT_EQ(mixed->tier(), MultiTier::kMixed);
  EXPECT_NE(mixed->eager(), nullptr);
  EXPECT_EQ(mixed->lazy(), nullptr);
  EXPECT_EQ(mixed->stats().stackless_members, 1);
  ASSERT_EQ(mixed->mixed_dras().size(), 1u);

  // The mixed tier needs every stackless member's fused DRA; term
  // encoding has none (OnClose(-1) cannot be tabled), so the same batch
  // steps independently there.
  MultiQueryOptions term_options;
  term_options.plan.encoding = StreamEncoding::kTerm;
  term_options.plan.format = StreamFormat::kCompactTerm;
  auto term_mixed = MultiQueryPlan::Compile(XPathBatch({"/a//b", "/a/b"}),
                                            alphabet, term_options);
  EXPECT_EQ(term_mixed->tier(), MultiTier::kIndependent);
  EXPECT_EQ(term_mixed->eager(), nullptr);
  EXPECT_EQ(term_mixed->lazy(), nullptr);

  // Mixed has no lazy rung: an over-cap registerless sub-product demotes
  // the whole batch to independent stepping.
  MultiQueryOptions tiny_cap;
  tiny_cap.eager_state_cap = 1;
  auto capped = MultiQueryPlan::Compile(XPathBatch({"/a//b", "/a/b"}),
                                        alphabet, tiny_cap);
  EXPECT_EQ(capped->tier(), MultiTier::kIndependent);
  EXPECT_EQ(capped->eager(), nullptr);
  EXPECT_TRUE(capped->mixed_dras().empty());

  // An all-stackless batch is mixed too: no product members, every slot a
  // fused DRA.
  auto all_dra = MultiQueryPlan::Compile(XPathBatch({"/a/b", "/b/*//c"}),
                                         alphabet, MultiQueryOptions{});
  EXPECT_EQ(all_dra->tier(), MultiTier::kMixed);
  EXPECT_EQ(all_dra->eager(), nullptr);
  EXPECT_EQ(all_dra->stats().stackless_members, 2);
}

// Satellite property test: 30 random trees × {markup, xml-lite, term} ×
// chunk splits {1, 3, 16} — BatchSession per-query results byte-identical
// to N independent StreamingSelector runs.
TEST(BatchSession, ParityAcrossFormatsAndChunkings) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(71);
  std::vector<Tree> trees = testing::SampleTrees(30, 3, &rng);

  struct FormatCase {
    const char* name;
    StreamEncoding encoding;
    StreamFormat format;
  };
  const FormatCase kFormats[] = {
      {"markup", StreamEncoding::kMarkup, StreamFormat::kCompactMarkup},
      {"xml-lite", StreamEncoding::kMarkup, StreamFormat::kXmlLite},
      {"term", StreamEncoding::kTerm, StreamFormat::kCompactTerm},
  };
  for (const FormatCase& format_case : kFormats) {
    MultiQueryOptions options;
    options.plan.encoding = format_case.encoding;
    options.plan.format = format_case.format;
    auto plan = MultiQueryPlan::Compile(RegisterlessBatch(), alphabet,
                                        options);
    BatchSession batch(plan);

    std::vector<std::unique_ptr<Session>> independent;
    std::vector<Session*> independent_ptrs;
    for (const auto& slot_plan : plan->slot_plans()) {
      independent.push_back(std::make_unique<Session>(slot_plan));
      independent_ptrs.push_back(independent.back().get());
    }
    ASSERT_EQ(independent.size(), 4u) << format_case.name;

    for (const Tree& tree : trees) {
      EventStream events = Encode(tree);
      std::string text;
      switch (format_case.format) {
        case StreamFormat::kCompactMarkup:
          text = ToCompactMarkup(alphabet, events);
          break;
        case StreamFormat::kXmlLite:
          text = ToXmlLite(alphabet, events);
          break;
        case StreamFormat::kCompactTerm:
          text = ToCompactTerm(alphabet, events);
          break;
      }
      for (size_t chunk : {size_t{1}, size_t{3}, size_t{16}}) {
        BatchRunRecord fused = DriveBatch(&batch, text, chunk);
        BatchRunRecord reference =
            DriveIndependent(independent_ptrs, text, chunk);
        EXPECT_EQ(fused, reference)
            << format_case.name << " chunk " << chunk << ": " << text;
      }
    }
  }
}

TEST(BatchSession, FaultedInputsFirstErrorParity) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = MultiQueryPlan::Compile(RegisterlessBatch(), alphabet,
                                      MultiQueryOptions{});
  ASSERT_EQ(plan->tier(), MultiTier::kFusedProduct);
  BatchSession batch(plan);

  std::vector<std::unique_ptr<Session>> independent;
  std::vector<Session*> independent_ptrs;
  for (const auto& slot_plan : plan->slot_plans()) {
    independent.push_back(std::make_unique<Session>(slot_plan));
    independent_ptrs.push_back(independent.back().get());
  }

  Rng rng(83);
  FaultInjector injector(83);
  for (const Tree& tree : testing::SampleTrees(30, 3, &rng)) {
    std::string doc = ToCompactMarkup(alphabet, Encode(tree));
    for (int kind = 0; kind < kNumFaultKinds; ++kind) {
      std::string mutated = doc;
      injector.Apply(static_cast<FaultKind>(kind), &mutated);
      for (size_t chunk : {size_t{1}, size_t{3}, size_t{16}}) {
        BatchRunRecord fused = DriveBatch(&batch, mutated, chunk);
        BatchRunRecord reference =
            DriveIndependent(independent_ptrs, mutated, chunk);
        EXPECT_EQ(fused, reference)
            << FaultKindName(static_cast<FaultKind>(kind)) << " chunk "
            << chunk << ": " << mutated;
      }
    }
  }
}

TEST(BatchSession, IndependentTierMatchesReferenceToo) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  // "/a/b" is stackless, "//a/b" needs the stack baseline: the batch runs
  // on the independent tier but must behave exactly the same.
  auto plan = MultiQueryPlan::Compile(
      XPathBatch({"/a//b", "/a/b", "//a/b"}), alphabet, MultiQueryOptions{});
  ASSERT_EQ(plan->tier(), MultiTier::kIndependent);
  BatchSession batch(plan);
  EXPECT_EQ(batch.active_tier(), MultiTier::kIndependent);
  EXPECT_EQ(batch.runner(), nullptr);

  std::vector<std::unique_ptr<Session>> independent;
  std::vector<Session*> independent_ptrs;
  for (const auto& slot_plan : plan->slot_plans()) {
    independent.push_back(std::make_unique<Session>(slot_plan));
    independent_ptrs.push_back(independent.back().get());
  }

  Rng rng(89);
  for (const Tree& tree : testing::SampleTrees(20, 3, &rng)) {
    std::string doc = ToCompactMarkup(alphabet, Encode(tree));
    for (size_t chunk : {size_t{1}, size_t{16}}) {
      EXPECT_EQ(DriveBatch(&batch, doc, chunk),
                DriveIndependent(independent_ptrs, doc, chunk));
    }
  }
}

// Mixed tier: registerless + stackless in ONE scan must agree
// query-for-query with independent per-query sessions — clean and faulted
// inputs, every chunking, and the one-scan byte entry points.
TEST(BatchSession, MixedTierMatchesIndependentReference) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = MultiQueryPlan::Compile(
      XPathBatch({"/a//b", "/a/b", "/c//b", "/b/*//c"}), alphabet,
      MultiQueryOptions{});
  ASSERT_EQ(plan->tier(), MultiTier::kMixed);
  EXPECT_EQ(plan->stats().stackless_members, 2);
  BatchSession batch(plan);
  EXPECT_EQ(batch.active_tier(), MultiTier::kMixed);
  ASSERT_TRUE(batch.one_scan_eligible());

  std::vector<std::unique_ptr<Session>> independent;
  std::vector<Session*> independent_ptrs;
  for (const auto& slot_plan : plan->slot_plans()) {
    independent.push_back(std::make_unique<Session>(slot_plan));
    independent_ptrs.push_back(independent.back().get());
  }

  Rng rng(107);
  FaultInjector injector(107);
  for (const Tree& tree : testing::SampleTrees(30, 3, &rng)) {
    std::string doc = ToCompactMarkup(alphabet, Encode(tree));
    for (size_t chunk : {size_t{1}, size_t{3}, size_t{16}}) {
      BatchRunRecord mixed = DriveBatch(&batch, doc, chunk);
      BatchRunRecord reference =
          DriveIndependent(independent_ptrs, doc, chunk);
      EXPECT_EQ(mixed, reference) << "chunk " << chunk << ": " << doc;
      if (mixed.ok) {
        EXPECT_EQ(batch.CountSelections(doc), mixed.matches) << doc;
      }
    }
    std::string mutated = doc;
    injector.Apply(
        static_cast<FaultKind>(rng.NextBelow(
            static_cast<uint64_t>(kNumFaultKinds))),
        &mutated);
    for (size_t chunk : {size_t{1}, size_t{16}}) {
      EXPECT_EQ(DriveBatch(&batch, mutated, chunk),
                DriveIndependent(independent_ptrs, mutated, chunk))
          << mutated;
    }
  }
}

// All-stackless mixed batch: no registerless sub-product at all, every
// member a fused DRA stepped in the same scan.
TEST(BatchSession, AllStacklessBatchRunsMixed) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = MultiQueryPlan::Compile(XPathBatch({"/a/b", "/b/*//c"}),
                                      alphabet, MultiQueryOptions{});
  ASSERT_EQ(plan->tier(), MultiTier::kMixed);
  ASSERT_EQ(plan->eager(), nullptr);
  BatchSession batch(plan);

  std::vector<std::unique_ptr<Session>> independent;
  std::vector<Session*> independent_ptrs;
  for (const auto& slot_plan : plan->slot_plans()) {
    independent.push_back(std::make_unique<Session>(slot_plan));
    independent_ptrs.push_back(independent.back().get());
  }

  Rng rng(109);
  for (const Tree& tree : testing::SampleTrees(20, 3, &rng)) {
    std::string doc = ToCompactMarkup(alphabet, Encode(tree));
    for (size_t chunk : {size_t{1}, size_t{7}}) {
      BatchRunRecord mixed = DriveBatch(&batch, doc, chunk);
      EXPECT_EQ(mixed, DriveIndependent(independent_ptrs, doc, chunk))
          << doc;
      if (mixed.ok) {
        EXPECT_EQ(batch.CountSelections(doc), mixed.matches) << doc;
      }
    }
  }
}

TEST(BatchSession, LazyTierAndWideDemotionKeepParity) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  MultiQueryOptions lazy_options;
  lazy_options.eager_state_cap = 1;  // force the lazy tier
  lazy_options.lazy_state_cap = 2;   // ...and mid-stream wide demotion
  auto plan = MultiQueryPlan::Compile(RegisterlessBatch(), alphabet,
                                      lazy_options);
  ASSERT_EQ(plan->tier(), MultiTier::kLazyProduct);
  BatchSession batch(plan);

  std::vector<std::unique_ptr<Session>> independent;
  std::vector<Session*> independent_ptrs;
  for (const auto& slot_plan : plan->slot_plans()) {
    independent.push_back(std::make_unique<Session>(slot_plan));
    independent_ptrs.push_back(independent.back().get());
  }

  Rng rng(97);
  bool saw_demotion = false;
  for (const Tree& tree : testing::SampleTrees(30, 3, &rng)) {
    std::string doc = ToCompactMarkup(alphabet, Encode(tree));
    for (size_t chunk : {size_t{1}, size_t{7}}) {
      EXPECT_EQ(DriveBatch(&batch, doc, chunk),
                DriveIndependent(independent_ptrs, doc, chunk))
          << doc;
      saw_demotion |= batch.active_tier() == MultiTier::kIndependent;
    }
  }
  EXPECT_TRUE(saw_demotion);
  EXPECT_TRUE(plan->stats().lazy_overflowed);
  EXPECT_LE(plan->stats().lazy_states, 2);
}

TEST(BatchSession, OneScanCountsMatchStreaming) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = MultiQueryPlan::Compile(
      XPathBatch({"/a//b", " /a //b ", "/b//a", "/c//b"}), alphabet,
      MultiQueryOptions{});
  ASSERT_EQ(plan->tier(), MultiTier::kFusedProduct);
  BatchSession batch(plan);
  ASSERT_TRUE(batch.one_scan_eligible());

  Rng rng(101);
  for (const Tree& tree : testing::SampleTrees(20, 3, &rng)) {
    std::string doc = ToCompactMarkup(alphabet, Encode(tree));
    BatchRunRecord streamed = DriveBatch(&batch, doc, 16);
    ASSERT_TRUE(streamed.ok);
    EXPECT_EQ(batch.CountSelections(doc), streamed.matches) << doc;
  }
}

TEST(BatchSession, ConcurrentSessionsShareOneLazyPlan) {
  constexpr int kThreads = 8;
  Alphabet alphabet = Alphabet::FromLetters("abc");
  MultiQueryOptions lazy_options;
  lazy_options.eager_state_cap = 1;
  auto plan = MultiQueryPlan::Compile(RegisterlessBatch(), alphabet,
                                      lazy_options);
  ASSERT_EQ(plan->tier(), MultiTier::kLazyProduct);

  Rng rng(103);
  std::vector<std::string> documents;
  for (const Tree& tree : testing::SampleTrees(40, 3, &rng)) {
    documents.push_back(ToCompactMarkup(alphabet, Encode(tree)));
  }
  documents.push_back("abBAabA");  // truncated
  documents.push_back("abXBA");    // unknown label

  // Sequential reference over independent per-query sessions.
  std::vector<std::unique_ptr<Session>> independent;
  std::vector<Session*> independent_ptrs;
  for (const auto& slot_plan : plan->slot_plans()) {
    independent.push_back(std::make_unique<Session>(slot_plan));
    independent_ptrs.push_back(independent.back().get());
  }
  std::vector<std::vector<BatchRunRecord>> expected(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (const std::string& doc : documents) {
      expected[t].push_back(DriveIndependent(independent_ptrs, doc,
                                             static_cast<size_t>(t) + 1));
    }
  }

  std::vector<std::vector<BatchRunRecord>> concurrent(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      BatchSession session(plan);
      for (const std::string& doc : documents) {
        concurrent[t].push_back(
            DriveBatch(&session, doc, static_cast<size_t>(t) + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(concurrent[t], expected[t]) << "thread " << t;
  }
}

TEST(BatchSessionPool, ReusesSessionsAcrossAcquires) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = MultiQueryPlan::Compile(RegisterlessBatch(), alphabet,
                                      MultiQueryOptions{});
  BatchSessionPool pool(plan, /*max_idle=*/2);

  std::string doc = "abBA";
  auto first = pool.Acquire();
  ASSERT_TRUE(first->Feed(doc) && first->Finish());
  std::vector<int64_t> counts = first->query_matches();
  pool.Release(std::move(first));
  EXPECT_EQ(pool.idle(), 1u);

  auto second = pool.Acquire();
  EXPECT_EQ(pool.stats().reused, 1);
  EXPECT_EQ(pool.stats().created, 1);
  // Reset-on-acquire: counts start from zero again.
  ASSERT_TRUE(second->Feed(doc) && second->Finish());
  EXPECT_EQ(second->query_matches(), counts);
  pool.Release(std::move(second));
}

}  // namespace
}  // namespace sst
