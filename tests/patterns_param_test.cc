// Parameterized sweep of Proposition 2.8: for every random pattern shape
// the streaming matcher must agree with the in-memory DP matcher on every
// document, under both encodings (the matcher never reads closing labels,
// so it is a term-encoding machine for free).

#include <gtest/gtest.h>

#include "base/rng.h"
#include "dra/machine.h"
#include "patterns/descendant_pattern.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/generators.h"

namespace sst {
namespace {

class PatternLaws : public ::testing::TestWithParam<int> {
 protected:
  Tree MakePattern() {
    Rng rng(GetParam() * 4241 + 3);
    int size = 1 + static_cast<int>(rng.NextBelow(6));
    return RandomTree(size, 3, rng.NextDouble(), &rng);
  }
};

TEST_P(PatternLaws, StreamingMatcherAgreesWithDp) {
  Tree pattern = MakePattern();
  DescendantPatternMatcher matcher(pattern);
  Rng rng(GetParam() * 11 + 7);
  int matches = 0;
  for (const Tree& tree : testing::SampleTrees(40, 3, &rng)) {
    bool expected = ContainsPattern(tree, pattern);
    ASSERT_EQ(RunAcceptor(&matcher, Encode(tree)), expected);
    matches += expected ? 1 : 0;
  }
  (void)matches;
}

TEST_P(PatternLaws, MatcherIgnoresClosingLabels) {
  // Run on term-encoded streams (closing symbol -1): identical verdicts.
  Tree pattern = MakePattern();
  DescendantPatternMatcher matcher(pattern);
  Rng rng(GetParam() * 13 + 5);
  for (const Tree& tree : testing::SampleTrees(30, 3, &rng)) {
    EventStream markup = Encode(tree);
    EventStream term = markup;
    for (TagEvent& event : term) {
      if (!event.open) event.symbol = -1;
    }
    ASSERT_EQ(RunAcceptor(&matcher, term), RunAcceptor(&matcher, markup));
  }
}

TEST_P(PatternLaws, MatchingIsMonotoneUnderGrafting) {
  // Adding subtrees can only create matches, never destroy them.
  Tree pattern = MakePattern();
  Rng rng(GetParam() * 17 + 1);
  for (int trial = 0; trial < 15; ++trial) {
    Tree tree = RandomTree(15, 3, rng.NextDouble(), &rng);
    bool before = ContainsPattern(tree, pattern);
    Tree grown = tree;
    for (int extra = 0; extra < 10; ++extra) {
      grown.AddChild(static_cast<int>(rng.NextBelow(grown.size())),
                     static_cast<Symbol>(rng.NextBelow(3)));
    }
    if (before) {
      EXPECT_TRUE(ContainsPattern(grown, pattern));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternLaws, ::testing::Range(0, 20));

}  // namespace
}  // namespace sst
