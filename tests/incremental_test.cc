// Property suite for incremental re-evaluation (engine/incremental.h):
// after any edit, ApplyEdit's results — match count, match events, first
// StreamError, recovered errors, and every chunking-invariant StreamStats
// counter — must be byte-identical to a full fail-fast rescan of the
// edited document by a fresh selector that never checkpoints. The sweep
// crosses random trees x three stream formats x the three execution tiers
// x generated edit kinds x checkpoint intervals {1, 7, 64, 4096}, so edits
// land before, on, after, and straddling checkpoint boundaries, and (with
// kCorruptByte under the recovery policies) inside malformed and
// recovered regions.

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "base/rng.h"
#include "dra/stream_error.h"
#include "dra/streaming.h"
#include "engine/incremental.h"
#include "engine/query_plan.h"
#include "query/rpq.h"
#include "test_util.h"
#include "testing/edit_workload.h"
#include "trees/encoding.h"
#include "trees/generators.h"
#include "trees/tree.h"

namespace sst {
namespace {

// Iteration multiplier for the scheduled long-fuzz CI job: SST_FUZZ_ITERS
// scales every sweep (default 1 keeps the suite fast for tier-1 runs).
int FuzzIters() {
  const char* env = std::getenv("SST_FUZZ_ITERS");
  if (env == nullptr) return 1;
  int iters = std::atoi(env);
  return iters > 0 ? iters : 1;
}

// The three rungs of the degradation ladder over Alphabet "abc" (see
// engine_plan_test.cc for the tier verdicts these queries compile to).
struct TierCase {
  const char* name;
  const char* xpath;
  EvaluatorKind kind;
};

constexpr TierCase kTiers[] = {
    {"registerless", "/a//b", EvaluatorKind::kRegisterless},
    {"stackless", "/a/b", EvaluatorKind::kStackless},
    {"stack", "//a/b", EvaluatorKind::kStackBaseline},
};

constexpr StreamFormat kFormats[] = {StreamFormat::kCompactMarkup,
                                     StreamFormat::kXmlLite,
                                     StreamFormat::kCompactTerm};

constexpr int64_t kIntervals[] = {1, 7, 64, 4096};

const char* FormatName(StreamFormat format) {
  switch (format) {
    case StreamFormat::kCompactMarkup:
      return "markup";
    case StreamFormat::kXmlLite:
      return "xml";
    case StreamFormat::kCompactTerm:
      return "term";
  }
  return "?";
}

std::shared_ptr<const QueryPlan> CompileTier(const TierCase& tier,
                                             const Alphabet& alphabet,
                                             StreamFormat format) {
  PlanOptions options;
  options.format = format;
  options.encoding = format == StreamFormat::kCompactTerm
                         ? StreamEncoding::kTerm
                         : StreamEncoding::kMarkup;
  auto plan = QueryPlan::Compile(Rpq::FromXPath(tier.xpath, alphabet),
                                 options);
  EXPECT_EQ(plan->kind(), tier.kind) << tier.xpath;
  EXPECT_TRUE(plan->exact());
  return plan;
}

std::string Serialize(const Alphabet& alphabet, const Tree& tree,
                      StreamFormat format) {
  const EventStream events = Encode(tree);
  switch (format) {
    case StreamFormat::kCompactMarkup:
      return ToCompactMarkup(alphabet, events);
    case StreamFormat::kXmlLite:
      return ToXmlLite(alphabet, events);
    case StreamFormat::kCompactTerm:
      return ToCompactTerm(alphabet, events);
  }
  return {};
}

// Verdict-only event log — the same sink shape IncrementalSession
// installs, so oracle and session agree on matches_emitted and pending
// peaks by construction.
class LogSink final : public MatchSink {
 public:
  void OnMatch(const MatchEvent& event) override { events.push_back(event); }
  void OnSpanClose(const MatchEvent&) override {}
  bool wants_spans() const override { return false; }
  std::vector<MatchEvent> events;
};

// Everything a run of a document produces that an edit must reproduce.
struct RunResult {
  std::vector<MatchEvent> events;
  StreamStats stats;
  bool failed = false;
  bool complete = false;
  bool accepting = false;
  StreamError error;
  std::vector<StreamingSelector::RecoveredError> recovered;
};

// The oracle: a fresh plain selector (no checkpoints, no resume) scanning
// the whole document in one Feed.
RunResult FullRescan(const QueryPlan& plan, RecoveryPolicy policy,
                     const StreamLimits& limits, std::string_view doc) {
  auto machine = plan.NewMachine();
  StreamingSelector selector(machine.get(), plan.options().format,
                             &plan.alphabet(), &plan.scanner_tables(),
                             plan.fused(), plan.fused_dra());
  selector.set_recovery_policy(policy);
  selector.set_limits(limits);
  LogSink sink;
  selector.set_match_sink(&sink);
  if (selector.Feed(doc)) selector.Finish();
  RunResult r;
  r.events = std::move(sink.events);
  r.stats = selector.stats();
  r.failed = selector.failed();
  r.complete = selector.document_complete();
  r.accepting = selector.machine_accepting();
  r.error = selector.stream_error();
  r.recovered = selector.recovered_errors();
  return r;
}

RunResult FromSession(const IncrementalSession& session) {
  RunResult r;
  r.events = session.match_events();
  r.stats = session.stats();
  r.failed = session.failed();
  r.complete = session.document_complete();
  r.accepting = session.machine_accepting();
  r.error = session.stream_error();
  r.recovered = session.recovered_errors();
  return r;
}

void ExpectSameError(const StreamError& got, const StreamError& want,
                     const std::string& ctx) {
  EXPECT_EQ(got.code, want.code) << ctx;
  EXPECT_EQ(got.offset, want.offset) << ctx;
  if (got.code == want.code && !got.ok()) {
    EXPECT_EQ(got.depth, want.depth) << ctx;
  }
}

// Full-rescan parity, field by field. chunks_fed is excluded by design:
// it counts Feed calls, and resuming from a checkpoint necessarily feeds
// different chunks than a single-Feed rescan.
void ExpectParity(const RunResult& got, const RunResult& want,
                  const std::string& ctx) {
  EXPECT_EQ(got.events, want.events) << ctx;
  EXPECT_EQ(got.failed, want.failed) << ctx;
  EXPECT_EQ(got.complete, want.complete) << ctx;
  EXPECT_EQ(got.accepting, want.accepting) << ctx;
  ExpectSameError(got.error, want.error, ctx);

  ASSERT_EQ(got.recovered.size(), want.recovered.size()) << ctx;
  for (size_t i = 0; i < got.recovered.size(); ++i) {
    ExpectSameError(got.recovered[i].error, want.recovered[i].error, ctx);
    EXPECT_EQ(got.recovered[i].excise_from, want.recovered[i].excise_from)
        << ctx;
    EXPECT_EQ(got.recovered[i].resume_offset, want.recovered[i].resume_offset)
        << ctx;
    EXPECT_EQ(got.recovered[i].closed_label, want.recovered[i].closed_label)
        << ctx;
  }

  EXPECT_EQ(got.stats.bytes_fed, want.stats.bytes_fed) << ctx;
  EXPECT_EQ(got.stats.events, want.stats.events) << ctx;
  EXPECT_EQ(got.stats.max_depth, want.stats.max_depth) << ctx;
  EXPECT_EQ(got.stats.matches, want.stats.matches) << ctx;
  EXPECT_EQ(got.stats.errors_recovered, want.stats.errors_recovered) << ctx;
  EXPECT_EQ(got.stats.subtrees_skipped, want.stats.subtrees_skipped) << ctx;
  EXPECT_EQ(got.stats.error_offset, want.stats.error_offset) << ctx;
  EXPECT_EQ(got.stats.matches_emitted, want.stats.matches_emitted) << ctx;
  EXPECT_EQ(got.stats.max_stack_depth, want.stats.max_stack_depth) << ctx;
  EXPECT_EQ(got.stats.underflow_closes, want.stats.underflow_closes) << ctx;
}

// The core property loop: scan a document, then apply a chain of edits,
// checking full-rescan parity after the initial scan and after every
// edit. `corrupt_every` > 0 makes every corrupt_every-th edit a
// kCorruptByte injection (malformed region), exercising resumes from and
// convergence across recovered/failed regions.
void RunEditChain(const QueryPlan& plan, std::shared_ptr<const QueryPlan> sp,
                  StreamFormat format, RecoveryPolicy policy,
                  const StreamLimits& limits, std::string_view initial_doc,
                  int64_t interval, int edits, int corrupt_every,
                  uint64_t seed, const std::string& ctx) {
  IncrementalOptions options;
  options.checkpoint_interval = interval;
  options.policy = policy;
  options.limits = limits;
  IncrementalSession session(sp, options);

  std::string doc(initial_doc);
  session.Scan(doc);
  ASSERT_TRUE(session.checkpointing_supported()) << ctx;
  ExpectParity(FromSession(session),
               FullRescan(plan, policy, limits, doc), ctx + " scan");

  EditWorkload workload(&plan.alphabet(), format, seed);
  for (int e = 0; e < edits; ++e) {
    const bool corrupt = corrupt_every > 0 && (e + 1) % corrupt_every == 0;
    const DocEdit edit = corrupt
                             ? workload.Make(EditKind::kCorruptByte, doc)
                             : workload.Next(doc);
    const std::string next = EditWorkload::Apply(doc, edit);
    const std::string edit_ctx =
        ctx + " edit " + std::to_string(e) + " [" +
        std::to_string(edit.offset) + "," +
        std::to_string(edit.offset + edit.old_len) + ")->" +
        std::to_string(edit.new_bytes.size()) + "B";
    session.ApplyEdit(edit.offset, edit.old_len, edit.new_bytes, next);
    ExpectParity(FromSession(session),
                 FullRescan(plan, policy, limits, next), edit_ctx);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "stopping chain after first divergence: " << edit_ctx;
      return;
    }
    doc = next;
  }
}

// --- Initial-scan parity ---------------------------------------------

// A checkpointing Scan must itself be invisible: same results as a plain
// selector run across formats and tiers, including at interval 1 (a
// checkpoint at every byte boundary the grid hits).
TEST(IncrementalScan, MatchesPlainSelector) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(2024);
  const auto trees = testing::SampleTrees(10 * FuzzIters(), alphabet.size(),
                                          &rng);
  for (const TierCase& tier : kTiers) {
    for (StreamFormat format : kFormats) {
      auto plan = CompileTier(tier, alphabet, format);
      for (const Tree& tree : trees) {
        const std::string doc = Serialize(alphabet, tree, format);
        for (int64_t interval : kIntervals) {
          IncrementalOptions options;
          options.checkpoint_interval = interval;
          IncrementalSession session(plan, options);
          session.Scan(doc);
          const std::string ctx = std::string(tier.name) + "/" +
                                  FormatName(format) + " K=" +
                                  std::to_string(interval);
          ExpectParity(FromSession(session),
                       FullRescan(*plan, RecoveryPolicy::kFailFast,
                                  StreamLimits{}, doc),
                       ctx);
        }
      }
    }
  }
}

// Rescanning (Scan called again) resets cleanly, including the checkpoint
// stream: counts reflect only the latest document.
TEST(IncrementalScan, RescanResets) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = CompileTier(kTiers[2], alphabet, StreamFormat::kCompactMarkup);
  IncrementalOptions options;
  options.checkpoint_interval = 4;
  IncrementalSession session(plan, options);

  ASSERT_TRUE(session.Scan("a b B a bB A cC A"));
  const int64_t first_matches = session.matches();
  EXPECT_GT(first_matches, 0);
  const size_t first_cps = session.checkpoint_count();

  ASSERT_TRUE(session.Scan("cC"));
  EXPECT_EQ(session.matches(), 0);
  EXPECT_LT(session.checkpoint_count(), first_cps);
  ExpectParity(FromSession(session),
               FullRescan(*plan, RecoveryPolicy::kFailFast, StreamLimits{},
                          "cC"),
               "rescan");
}

// --- Edit parity: the main sweep -------------------------------------

// Well-formed edit chains under fail-fast, across every tier x format x
// interval. 30 trees per configuration (scaled by SST_FUZZ_ITERS).
TEST(IncrementalEdit, WellFormedEditParity) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(7);
  const int trees_per_config = 30 * FuzzIters();
  for (const TierCase& tier : kTiers) {
    for (StreamFormat format : kFormats) {
      auto plan = CompileTier(tier, alphabet, format);
      const auto trees =
          testing::SampleTrees(trees_per_config, alphabet.size(), &rng);
      int tree_index = 0;
      for (const Tree& tree : trees) {
        const std::string doc = Serialize(alphabet, tree, format);
        const int64_t interval =
            kIntervals[tree_index % std::size(kIntervals)];
        const std::string ctx = std::string(tier.name) + "/" +
                                FormatName(format) + " tree " +
                                std::to_string(tree_index) + " K=" +
                                std::to_string(interval);
        RunEditChain(*plan, plan, format, RecoveryPolicy::kFailFast,
                     StreamLimits{}, doc, interval, /*edits=*/4,
                     /*corrupt_every=*/0,
                     /*seed=*/1000 + static_cast<uint64_t>(tree_index), ctx);
        ++tree_index;
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

// Corrupting edits under fail-fast: the session must reproduce the fatal
// first error (code + offset + depth), and later edits must resume from a
// document whose previous run failed — including edits that repair the
// corruption so the document becomes clean again.
TEST(IncrementalEdit, FailFastCorruptionParity) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(11);
  const int trees_per_config = 10 * FuzzIters();
  for (const TierCase& tier : kTiers) {
    for (StreamFormat format : kFormats) {
      auto plan = CompileTier(tier, alphabet, format);
      const auto trees =
          testing::SampleTrees(trees_per_config, alphabet.size(), &rng);
      int tree_index = 0;
      for (const Tree& tree : trees) {
        const std::string doc = Serialize(alphabet, tree, format);
        const int64_t interval =
            kIntervals[tree_index % std::size(kIntervals)];
        const std::string ctx = std::string(tier.name) + "/" +
                                FormatName(format) + " corrupt tree " +
                                std::to_string(tree_index) + " K=" +
                                std::to_string(interval);
        RunEditChain(*plan, plan, format, RecoveryPolicy::kFailFast,
                     StreamLimits{}, doc, interval, /*edits=*/6,
                     /*corrupt_every=*/2,
                     /*seed=*/2000 + static_cast<uint64_t>(tree_index), ctx);
        ++tree_index;
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

// Corrupting edits under the recovery policies: edits land inside and
// around skipped/recovered regions, and the recovered-error list (with
// its absolute excise/resume offsets) must splice exactly.
TEST(IncrementalEdit, RecoveryPolicyParity) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(13);
  const int trees_per_config = 8 * FuzzIters();
  for (RecoveryPolicy policy : {RecoveryPolicy::kSkipMalformedSubtree,
                                RecoveryPolicy::kAutoClose}) {
    for (const TierCase& tier : kTiers) {
      for (StreamFormat format : kFormats) {
        auto plan = CompileTier(tier, alphabet, format);
        const auto trees =
            testing::SampleTrees(trees_per_config, alphabet.size(), &rng);
        int tree_index = 0;
        for (const Tree& tree : trees) {
          const std::string doc = Serialize(alphabet, tree, format);
          const int64_t interval =
              kIntervals[tree_index % std::size(kIntervals)];
          const std::string ctx =
              std::string(tier.name) + "/" + FormatName(format) +
              (policy == RecoveryPolicy::kAutoClose ? " autoclose "
                                                    : " skip ") +
              "tree " + std::to_string(tree_index) + " K=" +
              std::to_string(interval);
          RunEditChain(*plan, plan, format, policy, StreamLimits{}, doc,
                       interval, /*edits=*/6, /*corrupt_every=*/2,
                       /*seed=*/3000 + static_cast<uint64_t>(tree_index),
                       ctx);
          ++tree_index;
          if (::testing::Test::HasFailure()) return;
        }
      }
    }
  }
}

// --- Edit-path observability ------------------------------------------

// A small edit deep inside a large document must take the spliced-suffix
// fast path: convergence soon after the edit, the far suffix untouched,
// bytes_rescanned a small fraction of the document.
TEST(IncrementalEdit, SmallEditSplicesSuffix) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = CompileTier(kTiers[1], alphabet, StreamFormat::kCompactMarkup);
  Rng rng(17);
  const Tree tree = RandomTree(80000, alphabet.size(), 0.3, &rng);
  const std::string doc =
      Serialize(alphabet, tree, StreamFormat::kCompactMarkup);
  ASSERT_GT(doc.size(), 16u * 4096u);  // 2 bytes/node: ~160k > 16 intervals

  IncrementalOptions options;
  options.checkpoint_interval = 4096;
  IncrementalSession session(plan, options);
  ASSERT_TRUE(session.Scan(doc));

  EditWorkload workload(&alphabet, StreamFormat::kCompactMarkup, 99);
  std::string cur = doc;
  bool saw_splice = false;
  for (int e = 0; e < 8; ++e) {
    const DocEdit edit = workload.Next(cur);
    const std::string next = EditWorkload::Apply(cur, edit);
    const auto outcome =
        session.ApplyEdit(edit.offset, edit.old_len, edit.new_bytes, next);
    ExpectParity(FromSession(session),
                 FullRescan(*plan, RecoveryPolicy::kFailFast, StreamLimits{},
                            next),
                 "splice edit " + std::to_string(e));
    if (outcome.path == IncrementalSession::EditPath::kSplicedSuffix) {
      saw_splice = true;
      EXPECT_GE(outcome.converged_at, edit.offset);
      EXPECT_LT(outcome.bytes_rescanned,
                static_cast<int64_t>(next.size()) / 2)
          << "spliced edit rescanned most of the document";
      EXPECT_LE(outcome.resumed_from, edit.offset);
    }
    cur = next;
  }
  EXPECT_TRUE(saw_splice)
      << "no edit of a 20k-node document took the fast path";
}

// Finite limits disable suffix splicing (prefix-dependent guards) but not
// checkpoint resume: edits still answer correctly via scan-to-end, and
// limit-triggered errors land at the same offsets as a full rescan.
TEST(IncrementalEdit, FiniteLimitsScanToEnd) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(19);
  StreamLimits limits;
  limits.max_depth = 6;
  for (const TierCase& tier : kTiers) {
    auto plan = CompileTier(tier, alphabet, StreamFormat::kCompactMarkup);
    const auto trees = testing::SampleTrees(6 * FuzzIters(), alphabet.size(),
                                            &rng);
    int tree_index = 0;
    for (const Tree& tree : trees) {
      const std::string doc =
          Serialize(alphabet, tree, StreamFormat::kCompactMarkup);
      IncrementalOptions options;
      options.checkpoint_interval = 7;
      options.limits = limits;
      IncrementalSession session(plan, options);
      session.Scan(doc);
      EditWorkload workload(&alphabet, StreamFormat::kCompactMarkup,
                            500 + static_cast<uint64_t>(tree_index));
      std::string cur = doc;
      for (int e = 0; e < 3; ++e) {
        const DocEdit edit = workload.Next(cur);
        const std::string next = EditWorkload::Apply(cur, edit);
        const auto outcome = session.ApplyEdit(edit.offset, edit.old_len,
                                               edit.new_bytes, next);
        EXPECT_NE(outcome.path,
                  IncrementalSession::EditPath::kSplicedSuffix)
            << "splice must be disabled under finite limits";
        ExpectParity(
            FromSession(session),
            FullRescan(*plan, RecoveryPolicy::kFailFast, limits, next),
            std::string(tier.name) + " limits tree " +
                std::to_string(tree_index) + " edit " + std::to_string(e));
        cur = next;
      }
      ++tree_index;
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// Edge-position edits: prepending whitespace at offset 0 (before every
// checkpoint — forces the origin-checkpoint resume) and appending
// whitespace at EOF (after every checkpoint).
TEST(IncrementalEdit, DocumentEdgeEdits) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(23);
  for (const TierCase& tier : kTiers) {
    for (StreamFormat format : kFormats) {
      auto plan = CompileTier(tier, alphabet, format);
      const Tree tree = RandomTree(30, alphabet.size(), 0.5, &rng);
      const std::string doc = Serialize(alphabet, tree, format);
      for (int64_t interval : kIntervals) {
        IncrementalOptions options;
        options.checkpoint_interval = interval;
        IncrementalSession session(plan, options);
        ASSERT_TRUE(session.Scan(doc));
        const std::string ctx = std::string(tier.name) + "/" +
                                FormatName(format) + " K=" +
                                std::to_string(interval);

        // Prepend.
        std::string cur = "  " + doc;
        session.ApplyEdit(0, 0, "  ", cur);
        ExpectParity(FromSession(session),
                     FullRescan(*plan, RecoveryPolicy::kFailFast,
                                StreamLimits{}, cur),
                     ctx + " prepend");

        // Append.
        const std::string next = cur + "\n";
        session.ApplyEdit(static_cast<int64_t>(cur.size()), 0, "\n", next);
        ExpectParity(FromSession(session),
                     FullRescan(*plan, RecoveryPolicy::kFailFast,
                                StreamLimits{}, next),
                     ctx + " append");

        // Delete the whole document, then rebuild it with one edit.
        session.ApplyEdit(0, static_cast<int64_t>(next.size()), "", "");
        ExpectParity(FromSession(session),
                     FullRescan(*plan, RecoveryPolicy::kFailFast,
                                StreamLimits{}, ""),
                     ctx + " clear");
        session.ApplyEdit(0, 0, doc, doc);
        ExpectParity(FromSession(session),
                     FullRescan(*plan, RecoveryPolicy::kFailFast,
                                StreamLimits{}, doc),
                     ctx + " rebuild");
      }
    }
  }
}

// An edit that exactly replaces the byte range between two checkpoints
// (straddling both boundaries) and one wholly inside a single checkpoint
// segment, deterministic rather than workload-generated.
TEST(IncrementalEdit, EditStraddlingCheckpointBoundary) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  auto plan = CompileTier(kTiers[2], alphabet, StreamFormat::kCompactMarkup);
  // 26 two-byte elements under one root: "a bB bB ... A" with checkpoints
  // every 8 bytes landing mid-element and between elements.
  std::string doc = "a";
  for (int i = 0; i < 26; ++i) doc += " bB";
  doc += " A";

  IncrementalOptions options;
  options.checkpoint_interval = 8;
  IncrementalSession session(plan, options);
  ASSERT_TRUE(session.Scan(doc));
  ASSERT_GT(session.checkpoint_count(), 4u);

  struct Case {
    int64_t offset;
    int64_t old_len;
    const char* replacement;
  };
  // Interval 8: checkpoints at 8, 16, 24, ... The first case replaces
  // [6, 18) — across two boundaries; the second edits inside [16, 24).
  const Case cases[] = {{6, 12, " cC cC"}, {17, 2, "cCbB"}};
  std::string cur = doc;
  for (const Case& c : cases) {
    const std::string next =
        cur.substr(0, static_cast<size_t>(c.offset)) + c.replacement +
        cur.substr(static_cast<size_t>(c.offset + c.old_len));
    session.ApplyEdit(c.offset, c.old_len, c.replacement, next);
    ExpectParity(FromSession(session),
                 FullRescan(*plan, RecoveryPolicy::kFailFast, StreamLimits{},
                            next),
                 "straddle @" + std::to_string(c.offset));
    cur = next;
  }
}

}  // namespace
}  // namespace sst
