// Parameterized sweep over random path DTDs: every validator and bridge in
// the library must agree with the direct DTD semantics on every document.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "classes/syntactic_classes.h"
#include "dra/machine.h"
#include "dtd/path_dtd.h"
#include "test_util.h"
#include "treeauto/hedge_builders.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

PathDtd RandomPathDtd(uint64_t seed, int num_symbols) {
  Rng rng(seed * 6361 + 11);
  PathDtd dtd;
  dtd.num_symbols = num_symbols;
  dtd.initial_symbol = static_cast<Symbol>(rng.NextBelow(num_symbols));
  dtd.productions.resize(num_symbols);
  for (Symbol a = 0; a < num_symbols; ++a) {
    for (Symbol b = 0; b < num_symbols; ++b) {
      if (rng.NextBool(0.5)) {
        dtd.productions[a].allowed_children.push_back(b);
      }
    }
    dtd.productions[a].allows_leaf =
        dtd.productions[a].allowed_children.empty() || rng.NextBool(0.7);
  }
  return dtd;
}

// A generator biased towards conforming documents so both verdicts occur.
Tree BiasedDocument(const PathDtd& dtd, Rng* rng) {
  Tree tree;
  int root = tree.AddRoot(dtd.initial_symbol);
  std::vector<int> frontier = {root};
  int budget = 2 + static_cast<int>(rng->NextBelow(25));
  while (budget-- > 0 && !frontier.empty()) {
    int parent = frontier[rng->NextBelow(frontier.size())];
    Symbol parent_label = tree.label(parent);
    const std::vector<Symbol>& allowed =
        dtd.productions[parent_label].allowed_children;
    Symbol label;
    if (!allowed.empty() && rng->NextBool(0.85)) {
      label = allowed[rng->NextBelow(allowed.size())];
    } else {
      label = static_cast<Symbol>(rng->NextBelow(dtd.num_symbols));
    }
    int child = tree.AddChild(parent, label);
    if (frontier.size() < 12) frontier.push_back(child);
  }
  return tree;
}

class PathDtdLaws : public ::testing::TestWithParam<int> {
 protected:
  PathDtd dtd_ = RandomPathDtd(GetParam(), 3);
};

TEST_P(PathDtdLaws, StackValidatorMatchesDirectSemantics) {
  StackDtdValidator validator(&dtd_);
  Rng rng(GetParam() * 7 + 1);
  int valid = 0, invalid = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Tree tree = BiasedDocument(dtd_, &rng);
    bool expected = SatisfiesPathDtd(dtd_, tree);
    ASSERT_EQ(RunAcceptor(&validator, Encode(tree)), expected);
    (expected ? valid : invalid) += 1;
  }
  EXPECT_GT(valid + invalid, 0);
}

TEST_P(PathDtdLaws, TreeLanguageEqualsForallOfPathLanguage) {
  Dfa minimal = PathLanguageMinimalDfa(dtd_);
  Rng rng(GetParam() * 7 + 2);
  for (int trial = 0; trial < 40; ++trial) {
    Tree tree = BiasedDocument(dtd_, &rng);
    ASSERT_EQ(SatisfiesPathDtd(dtd_, tree), TreeInForall(minimal, tree));
  }
}

TEST_P(PathDtdLaws, RegisterlessValidatorExactWheneverAFlat) {
  if (!IsRegisterlessWeaklyValidatable(dtd_)) {
    GTEST_SKIP() << "path language not A-flat";
  }
  std::unique_ptr<StreamMachine> validator =
      BuildRegisterlessDtdValidator(dtd_);
  Rng rng(GetParam() * 7 + 3);
  for (int trial = 0; trial < 40; ++trial) {
    Tree tree = BiasedDocument(dtd_, &rng);
    ASSERT_EQ(RunAcceptor(validator.get(), Encode(tree)),
              SatisfiesPathDtd(dtd_, tree));
  }
}

TEST_P(PathDtdLaws, HedgeBridgeMatchesDirectSemantics) {
  HedgeAutomaton automaton = PathDtdToHedgeAutomaton(dtd_);
  EXPECT_TRUE(HedgeIsDeterministic(automaton));
  Rng rng(GetParam() * 7 + 4);
  for (int trial = 0; trial < 30; ++trial) {
    Tree tree = BiasedDocument(dtd_, &rng);
    ASSERT_EQ(HedgeAccepts(automaton, tree), SatisfiesPathDtd(dtd_, tree));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathDtdLaws, ::testing::Range(0, 25));

}  // namespace
}  // namespace sst
