#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "eval/post_selection.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {

TEST(PostSelection, PathQueriesPickTheSameNodesAsPreSelection) {
  // For an RPQ, post-selection reports the same node set as pre-selection,
  // just at closing tags (Section 2.3's discussion of the two flavours).
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(3);
  for (const char* pattern : {"a.*b", ".*ab", "ab"}) {
    Dfa dfa = CompileRegex(pattern, alphabet);
    PostSelectStackEvaluator machine(&dfa);
    for (const Tree& tree : testing::SampleTrees(60, 3, &rng)) {
      ASSERT_EQ(RunPostQueryOnTree(&machine, tree), SelectNodes(dfa, tree))
          << pattern;
    }
  }
}

TEST(PostSelection, StreamOrderIsPostorder) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex(".*", alphabet);  // select everything
  PostSelectStackEvaluator machine(&dfa);
  // a( a, b ) closes in order: node1, node2, node0.
  Tree tree;
  int root = tree.AddRoot(0);
  tree.AddChild(root, 0);
  tree.AddChild(root, 1);
  std::vector<bool> stream = RunPostQuery(&machine, Encode(tree));
  EXPECT_EQ(stream.size(), 3u);
  EXPECT_TRUE(stream[0] && stream[1] && stream[2]);
}

TEST(PostSelection, SubtreeSizeNeedsPostSelection) {
  // 'at least k proper descendants' cannot be pre-selected (the subtree is
  // unread at the opening tag) but is a one-counter-per-level pushdown
  // post-selection.
  SubtreeSizeEvaluator machine(/*min_descendants=*/2);
  Rng rng(5);
  for (const Tree& tree : testing::SampleTrees(120, 2, &rng)) {
    std::vector<bool> selected = RunPostQueryOnTree(&machine, tree);
    // Oracle: subtree sizes.
    std::vector<int> size(tree.size(), 1);
    for (int id = tree.size() - 1; id >= 1; --id) {
      size[tree.node(id).parent] += size[id];
    }
    for (int id = 0; id < tree.size(); ++id) {
      ASSERT_EQ(selected[id], size[id] - 1 >= 2) << id;
    }
  }
}

}  // namespace
}  // namespace sst
