// Tests for the refcounted pooled persistent stack (base/pooled_stack.h)
// and the rewritten StackQueryEvaluator on top of it: behavioral parity
// with the retained std::vector baseline (VectorStackQueryEvaluator),
// zero heap allocation in steady state, O(1) snapshots whose shared
// suffixes survive pop/push churn, iterative release of million-deep
// chains, and Reset() releasing every retained checkpoint slot.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/pooled_stack.h"
#include "base/rng.h"
#include "dra/streaming.h"
#include "eval/stack_evaluator.h"
#include "test_util.h"
#include "trees/encoding.h"

// Global allocation counter so tests can assert that the pooled stack's
// steady state performs no heap allocation (acceptance criterion of the
// incremental-reevaluation PR). Counts every operator new in the binary;
// tests only look at deltas.
namespace {
std::atomic<int64_t> g_heap_allocations{0};
}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace sst {
namespace {

using IntStack = PooledStack<int>;

// --- PooledStack unit behavior ----------------------------------------

TEST(PooledStack, PushPopLifo) {
  IntStack stack;
  EXPECT_TRUE(stack.empty());
  EXPECT_EQ(stack.size(), 0u);
  // Deep enough to cross several chunk boundaries both ways.
  const int depth = static_cast<int>(IntStack::kChunkCapacity) * 3 + 7;
  for (int i = 0; i < depth; ++i) stack.Push(i);
  EXPECT_EQ(stack.size(), static_cast<uint64_t>(depth));
  for (int i = depth - 1; i >= 0; --i) {
    EXPECT_EQ(stack.top(), i);
    stack.Pop();
  }
  EXPECT_TRUE(stack.empty());
}

TEST(PooledStack, SnapshotSurvivesPopAndPushChurn) {
  IntStack stack;
  for (int i = 0; i < 5; ++i) stack.Push(i);
  IntStack::Snapshot snap = stack.TakeSnapshot();
  ASSERT_NE(snap.head, nullptr);
  EXPECT_EQ(IntStack::SnapshotSize(snap), 5u);

  // Mutate the live stack away from the snapshot: the pushes land in a
  // copy-on-write chunk, never overwriting what the snapshot can see.
  stack.Pop();
  stack.Pop();
  stack.Push(77);
  stack.Push(78);
  stack.Push(79);
  EXPECT_EQ(stack.size(), 6u);
  EXPECT_FALSE(stack.EqualsSnapshot(snap));

  // ...then restore it: the snapshot's values are intact.
  stack.Restore(snap, 5);
  EXPECT_EQ(stack.size(), 5u);
  for (int i = 4; i >= 0; --i) {
    EXPECT_EQ(stack.top(), i);
    stack.Pop();
  }

  // The snapshot still holds its own reference and restores again.
  stack.Restore(snap, 5);
  EXPECT_EQ(stack.size(), 5u);
  EXPECT_TRUE(stack.EqualsSnapshot(snap));
  stack.Release(snap);
  stack.Clear();
}

TEST(PooledStack, EmptySnapshotRoundTrips) {
  IntStack stack;
  IntStack::Snapshot snap = stack.TakeSnapshot();
  EXPECT_EQ(snap.head, nullptr);
  stack.Push(1);
  stack.Restore(snap, 0);
  EXPECT_TRUE(stack.empty());
  stack.Release(snap);  // releasing the empty snapshot is a no-op
}

TEST(PooledStack, SnapshotsShareCommonSuffixStructurally) {
  const int chunk = static_cast<int>(IntStack::kChunkCapacity);
  IntStack stack;
  for (int i = 0; i < 4 * chunk; ++i) stack.Push(i);
  IntStack::Snapshot deep = stack.TakeSnapshot();
  for (int i = 0; i < 2 * chunk; ++i) stack.Pop();
  IntStack::Snapshot shallow = stack.TakeSnapshot();

  // The shallow snapshot's chunk IS a chunk of the deep chain — suffix
  // sharing is physical, not a copy.
  const IntStack::Node* walk = deep.head;
  while (walk != nullptr && walk != shallow.head) walk = walk->prev;
  EXPECT_EQ(walk, shallow.head);

  stack.Release(deep);
  // After the deep chain is released, the shallow snapshot (and the live
  // stack, which sits at the same position) still read correctly.
  EXPECT_EQ(stack.size(), static_cast<uint64_t>(2 * chunk));
  EXPECT_EQ(stack.top(), 2 * chunk - 1);
  EXPECT_TRUE(stack.EqualsSnapshot(shallow));
  stack.Release(shallow);
  stack.Clear();
}

TEST(PooledStack, EqualityComparesByValueAndShortCircuitsSharedTails) {
  IntStack pool;
  for (int i = 0; i < 8; ++i) pool.Push(i);
  IntStack::Snapshot a = pool.TakeSnapshot();
  // Divergent top over a shared tail.
  pool.Pop();
  pool.Push(99);
  IntStack::Snapshot b = pool.TakeSnapshot();
  EXPECT_FALSE(IntStack::SnapshotsEqual(a, b));

  // Rebuild the same value on top: equal by value though the live chain
  // now tops out in a different (copy-on-write) chunk.
  pool.Pop();
  pool.Push(7);
  IntStack::Snapshot c = pool.TakeSnapshot();
  EXPECT_NE(a.head, c.head);
  EXPECT_TRUE(IntStack::SnapshotsEqual(a, c));

  // Different depths are never equal.
  pool.Push(8);
  EXPECT_FALSE(pool.EqualsSnapshot(a));

  pool.Release(a);
  pool.Release(b);
  pool.Release(c);
  pool.Clear();
}

TEST(PooledStack, SnapshotValuesSurviveDeepChurnAcrossChunkBoundaries) {
  // A snapshot taken mid-chunk must keep every value it can see while the
  // live stack pops below it and pushes past it repeatedly — the ApplyEdit
  // rescan pattern. Exercises copy-on-write at and around boundaries.
  const int chunk = static_cast<int>(IntStack::kChunkCapacity);
  IntStack stack;
  Rng rng(91);
  std::vector<int> shadow;
  for (int i = 0; i < 3 * chunk + chunk / 2; ++i) {
    stack.Push(i * 3);
    shadow.push_back(i * 3);
  }
  IntStack::Snapshot snap = stack.TakeSnapshot();
  const std::vector<int> frozen = shadow;

  for (int round = 0; round < 200; ++round) {
    const int pops = static_cast<int>(rng.NextBelow(
        static_cast<uint64_t>(stack.size()) + 1));
    for (int i = 0; i < pops; ++i) {
      stack.Pop();
      shadow.pop_back();
    }
    const int pushes = static_cast<int>(rng.NextBelow(80));
    for (int i = 0; i < pushes; ++i) {
      const int value = static_cast<int>(rng.NextBelow(1000));
      stack.Push(value);
      shadow.push_back(value);
    }
    ASSERT_EQ(stack.size(), shadow.size());
    ASSERT_EQ(stack.EqualsSnapshot(snap), shadow == frozen);
  }

  // The snapshot restores byte-for-byte after all that churn.
  stack.Restore(snap, frozen.size());
  for (auto it = frozen.rbegin(); it != frozen.rend(); ++it) {
    ASSERT_EQ(stack.top(), *it);
    stack.Pop();
  }
  EXPECT_TRUE(stack.empty());
  stack.Release(snap);
}

TEST(PooledStack, FreeListRecyclesNodesAcrossClear) {
  IntStack stack;
  for (int i = 0; i < 600; ++i) stack.Push(i);
  const size_t warm_slabs = stack.slabs();
  EXPECT_GE(warm_slabs, 1u);
  stack.Clear();
  // Refill to the same depth: same slabs, nothing new allocated.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 600; ++i) stack.Push(i);
    EXPECT_EQ(stack.slabs(), warm_slabs);
    stack.Clear();
  }
}

TEST(PooledStack, MillionDeepChainReleasesIteratively) {
  constexpr uint64_t kDepth = 1'000'000;
  IntStack stack;
  for (uint64_t i = 0; i < kDepth; ++i) {
    stack.Push(static_cast<int>(i & 0xff));
  }
  EXPECT_EQ(stack.size(), kDepth);
  IntStack::Snapshot snap = stack.TakeSnapshot();
  EXPECT_EQ(IntStack::SnapshotSize(snap), kDepth);
  // Both releases walk the whole chunk chain; a recursive implementation
  // would blow the thread stack long before 10^6 / kChunkCapacity frames.
  stack.Clear();
  stack.Release(snap);
  EXPECT_TRUE(stack.empty());
  // And the pool reuses all of it.
  const size_t warm_slabs = stack.slabs();
  for (uint64_t i = 0; i < kDepth; ++i) {
    stack.Push(static_cast<int>(i & 0xff));
  }
  EXPECT_EQ(stack.slabs(), warm_slabs);
  stack.Clear();
}

// --- Evaluator parity with the vector baseline ------------------------

// Drives pooled and vector evaluators through the same random event
// stream — including unbalanced closes (underflows) and interleaved
// accept checks — asserting lockstep equality of every observable.
TEST(StackEvaluatorParity, RandomEventStreamsMatchVectorBaseline) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(41);
  const auto dfas = testing::SampleLanguages(
      8, alphabet.size(), [](const Dfa&) { return true; }, &rng);
  ASSERT_FALSE(dfas.empty());
  for (const Dfa& dfa : dfas) {
    StackQueryEvaluator pooled(&dfa);
    VectorStackQueryEvaluator vec(&dfa);
    for (int trial = 0; trial < 20; ++trial) {
      for (int step = 0; step < 400; ++step) {
        const Symbol symbol =
            static_cast<Symbol>(rng.NextBelow(alphabet.size()));
        if (rng.NextBool(0.55)) {
          pooled.OnOpen(symbol);
          vec.OnOpen(symbol);
        } else {
          // Half the closes land on empty stacks early on: underflow
          // tolerance must match too.
          pooled.OnClose(symbol);
          vec.OnClose(symbol);
        }
        ASSERT_EQ(pooled.InAcceptingState(), vec.InAcceptingState());
        ASSERT_EQ(pooled.depth(), vec.depth());
        ASSERT_EQ(pooled.max_stack_depth(), vec.max_stack_depth());
        ASSERT_EQ(pooled.underflow_closes(), vec.underflow_closes());
        ASSERT_EQ(pooled.StackDepthPeak(), vec.StackDepthPeak());
        ASSERT_EQ(pooled.StackUnderflowCloses(), vec.StackUnderflowCloses());
      }
      pooled.Reset();
      vec.Reset();
      ASSERT_EQ(pooled.depth(), 0u);
      ASSERT_EQ(pooled.InAcceptingState(), vec.InAcceptingState());
    }
  }
}

// Same parity through the full streaming selector on serialized trees:
// match counts, stats (including the new max_stack_depth /
// underflow_closes), and error behavior agree document for document.
TEST(StackEvaluatorParity, SelectorRunsMatchVectorBaseline) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Rng rng(43);
  Dfa dfa = CompileRegex("(a|b)*a", alphabet);
  const auto trees = testing::SampleTrees(25, alphabet.size(), &rng);
  for (StreamFormat format :
       {StreamFormat::kCompactMarkup, StreamFormat::kXmlLite,
        StreamFormat::kCompactTerm}) {
    for (const Tree& tree : trees) {
      const EventStream events = Encode(tree);
      std::string doc;
      switch (format) {
        case StreamFormat::kCompactMarkup:
          doc = ToCompactMarkup(alphabet, events);
          break;
        case StreamFormat::kXmlLite:
          doc = ToXmlLite(alphabet, events);
          break;
        case StreamFormat::kCompactTerm:
          doc = ToCompactTerm(alphabet, events);
          break;
      }
      StackQueryEvaluator pooled(&dfa);
      VectorStackQueryEvaluator vec(&dfa);
      StreamingSelector pooled_sel(&pooled, format, &alphabet);
      StreamingSelector vec_sel(&vec, format, &alphabet);
      ASSERT_EQ(pooled_sel.Feed(doc), vec_sel.Feed(doc));
      ASSERT_EQ(pooled_sel.Finish(), vec_sel.Finish());
      EXPECT_EQ(pooled_sel.matches(), vec_sel.matches());
      const StreamStats ps = pooled_sel.stats();
      const StreamStats vs = vec_sel.stats();
      EXPECT_EQ(ps.max_stack_depth, vs.max_stack_depth);
      EXPECT_EQ(ps.underflow_closes, vs.underflow_closes);
      EXPECT_EQ(ps.max_depth, vs.max_depth);
      EXPECT_EQ(ps.events, vs.events);
      // Stack size tracks element depth exactly when driven through the
      // selector (it never feeds unbalanced closes).
      EXPECT_EQ(ps.max_stack_depth, ps.max_depth);
      EXPECT_EQ(ps.underflow_closes, 0);
    }
  }
}

// --- Steady-state allocation -------------------------------------------

// After one warm-up document has sized the slab pool, further documents
// of no greater depth must allocate nothing: pushes come from the free
// list, checkpoint slots are recycled, Reset() keeps the slabs.
TEST(StackEvaluatorAllocation, SteadyStateIsAllocationFree) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  StackQueryEvaluator machine(&dfa);

  constexpr int kDepth = 800;
  constexpr int kRounds = 50;
  std::vector<std::vector<int64_t>> configs(4);

  auto run_document = [&](bool with_checkpoints) {
    for (int i = 0; i < kDepth; ++i) machine.OnOpen(0);
    if (with_checkpoints) {
      for (auto& config : configs) {
        ASSERT_TRUE(machine.SaveConfig(&config));
      }
      for (auto& config : configs) machine.ReleaseConfig(config);
    }
    for (int i = 0; i < kDepth; ++i) machine.OnClose(0);
    machine.Reset();
  };

  // Warm-up sizes the slab pool, the config vectors, and the slot
  // registry.
  run_document(true);
  run_document(true);

  const int64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < kRounds; ++round) run_document(true);
  const int64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "pooled stack steady state allocated " << (after - before)
      << " times over " << kRounds << " documents";
}

// Snapshot + restore cycles (the ApplyEdit hot path) are allocation-free
// too once warm.
TEST(StackEvaluatorAllocation, SnapshotRestoreCycleIsAllocationFree) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("(a|b)*", alphabet);
  StackQueryEvaluator machine(&dfa);
  std::vector<int64_t> config;

  for (int i = 0; i < 300; ++i) machine.OnOpen(i % 2);
  ASSERT_TRUE(machine.SaveConfig(&config));

  auto churn = [&] {
    for (int i = 0; i < 100; ++i) machine.OnClose(0);
    for (int i = 0; i < 150; ++i) machine.OnOpen(1);
    ASSERT_TRUE(machine.RestoreConfig(config));
    ASSERT_TRUE(machine.ConfigEqualsCurrent(config));
  };
  churn();  // warm-up

  const int64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 100; ++round) churn();
  const int64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0);

  machine.ReleaseConfig(config);
}

// --- Checkpoint protocol ----------------------------------------------

TEST(StackEvaluatorCheckpoint, ConfigRoundTripsAcrossDivergence) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a(b|c)*", alphabet);
  StackQueryEvaluator machine(&dfa);

  machine.OnOpen(0);
  machine.OnOpen(1);
  machine.OnOpen(2);
  std::vector<int64_t> config;
  ASSERT_TRUE(machine.SaveConfig(&config));
  EXPECT_TRUE(machine.ConfigEqualsCurrent(config));
  const bool accepting_at_save = machine.InAcceptingState();

  // Diverge: the config must stop matching, then match again after an
  // equivalent-by-value rebuild, then restore exactly.
  machine.OnClose(2);
  EXPECT_FALSE(machine.ConfigEqualsCurrent(config));
  machine.OnOpen(2);
  EXPECT_TRUE(machine.ConfigEqualsCurrent(config));
  machine.OnOpen(1);
  machine.OnOpen(1);
  EXPECT_FALSE(machine.ConfigEqualsCurrent(config));

  ASSERT_TRUE(machine.RestoreConfig(config));
  EXPECT_TRUE(machine.ConfigEqualsCurrent(config));
  EXPECT_EQ(machine.depth(), 3u);
  EXPECT_EQ(machine.InAcceptingState(), accepting_at_save);
  // Peak depth re-bases at the restored depth.
  EXPECT_EQ(machine.max_stack_depth(), 3u);

  machine.ReleaseConfig(config);
  EXPECT_EQ(machine.live_checkpoints(), 0u);
}

TEST(StackEvaluatorCheckpoint, SlotRecyclingAndRejects) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  StackQueryEvaluator machine(&dfa);

  machine.OnOpen(0);
  std::vector<int64_t> a, b;
  ASSERT_TRUE(machine.SaveConfig(&a));
  machine.OnOpen(0);
  ASSERT_TRUE(machine.SaveConfig(&b));
  EXPECT_EQ(machine.live_checkpoints(), 2u);

  machine.ReleaseConfig(a);
  EXPECT_EQ(machine.live_checkpoints(), 1u);
  std::vector<int64_t> c;
  ASSERT_TRUE(machine.SaveConfig(&c));
  // The freed slot is reused, not appended.
  EXPECT_EQ(c[1], a[1]);

  // Malformed configs are rejected, not trusted.
  EXPECT_FALSE(machine.RestoreConfig({}));
  EXPECT_FALSE(machine.RestoreConfig({0, 999, 0}));      // stale 3-word shape
  EXPECT_FALSE(machine.RestoreConfig({0, 999, 0, 0}));   // slot out of range
  EXPECT_FALSE(machine.ConfigEqualsCurrent({0, 999, 0, 0}));

  machine.ReleaseConfig(b);
  machine.ReleaseConfig(c);
  EXPECT_EQ(machine.live_checkpoints(), 0u);
}

// Reset() must release every retained checkpoint head back to the pool —
// a pooled Session returned to SessionPool with live checkpoints must not
// leak nodes or keep stale slots (ISSUE 10 satellite).
TEST(StackEvaluatorCheckpoint, ResetReleasesRetainedCheckpoints) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  StackQueryEvaluator machine(&dfa);

  std::vector<std::vector<int64_t>> configs(8);
  for (int depth = 0; depth < 700; ++depth) {
    machine.OnOpen(0);
    if (depth % 100 == 0) {
      ASSERT_TRUE(machine.SaveConfig(&configs[static_cast<size_t>(
          depth / 100)]));
    }
  }
  EXPECT_GT(machine.live_checkpoints(), 0u);
  const size_t warm_slabs = machine.pool_slabs();

  machine.Reset();
  EXPECT_EQ(machine.live_checkpoints(), 0u);
  EXPECT_EQ(machine.depth(), 0u);
  // Old configs no longer resolve: their slots are recycled or cleared,
  // never dangling. (Restoring must either fail or land on a fresh save,
  // not touch freed nodes — exercised under ASan.)
  for (const auto& config : configs) {
    if (config.size() == 4) {
      EXPECT_FALSE(machine.RestoreConfig(config));
    }
  }

  // All nodes went back to the free list: refilling to the same depth
  // allocates no new slab.
  const int64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int depth = 0; depth < 700; ++depth) machine.OnOpen(0);
  EXPECT_EQ(machine.pool_slabs(), warm_slabs);
  const int64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0);
  machine.Reset();
}

}  // namespace
}  // namespace sst
