#include <set>

#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/check.h"
#include "base/rng.h"
#include "dra/machine.h"
#include "dra/paper_examples.h"
#include "dra/tag_dfa.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/generators.h"

namespace sst {
namespace {

constexpr Symbol kA = 0, kB = 1, kC = 2;

TEST(Example22, SameDepthBuilderMatchesBruteForce) {
  Dra dra = BuildSameDepthDra(2, kA);
  DraRunner runner(&dra);
  Rng rng(5);
  for (const Tree& tree : testing::SampleTrees(300, 2, &rng)) {
    std::set<int> depths;
    for (int id = 0; id < tree.size(); ++id) {
      if (tree.label(id) == kA) depths.insert(tree.Depth(id));
    }
    EXPECT_EQ(RunAcceptor(&runner, Encode(tree)), depths.size() <= 1);
  }
}

TEST(Example25, RootChildrenLanguageForVariousL) {
  Alphabet alphabet = Alphabet::FromLetters("abc");
  // The paper's non-registerless instance L = Γ*aΓ*: some child labelled a.
  for (const char* pattern : {".*a.*", "(ab)*", "a.*b", "b*"}) {
    Dfa dfa = CompileRegex(pattern, alphabet);
    RootChildrenMachine machine(dfa);
    Rng rng(7);
    int accepted = 0;
    for (const Tree& tree : testing::SampleTrees(200, 3, &rng)) {
      Word children;
      for (int c = tree.node(tree.root()).first_child; c >= 0;
           c = tree.node(c).next_sibling) {
        children.push_back(tree.label(c));
      }
      bool expected = dfa.Accepts(children);
      ASSERT_EQ(RunAcceptor(&machine, Encode(tree)), expected) << pattern;
      accepted += expected ? 1 : 0;
    }
    EXPECT_GT(accepted, 0) << pattern;
  }
}

TEST(Example26, SomeADescendantB) {
  SomeADescendantBMachine machine(kA, kB);
  Rng rng(9);
  for (const Tree& tree : testing::SampleTrees(300, 3, &rng)) {
    // Oracle: exists an a-node with a proper b-descendant.
    std::vector<int> has_b_below(tree.size(), false);
    bool expected = false;
    for (int id = tree.size() - 1; id >= 0; --id) {
      bool below = false;
      for (int c = tree.node(id).first_child; c >= 0;
           c = tree.node(c).next_sibling) {
        below = below || has_b_below[c] || tree.label(c) == kB;
      }
      has_b_below[id] = below;
      expected = expected || (tree.label(id) == kA && below);
    }
    ASSERT_EQ(RunAcceptor(&machine, Encode(tree)), expected);
  }
}

TEST(Example27, MinimalAWithBChild) {
  MinimalAWithBChildMachine machine(kA, kB);
  Rng rng(10);
  for (const Tree& tree : testing::SampleTrees(300, 3, &rng)) {
    // Oracle: a minimal a-node (no a-labelled proper ancestor) with a
    // b-labelled child.
    bool expected = false;
    for (int id = 0; id < tree.size(); ++id) {
      if (tree.label(id) != kA) continue;
      bool minimal = true;
      for (int up = tree.node(id).parent; up >= 0;
           up = tree.node(up).parent) {
        minimal = minimal && tree.label(up) != kA;
      }
      if (!minimal) continue;
      for (int c = tree.node(id).first_child; c >= 0;
           c = tree.node(c).next_sibling) {
        expected = expected || tree.label(c) == kB;
      }
    }
    ASSERT_EQ(RunAcceptor(&machine, Encode(tree)), expected);
  }
}

TEST(Example27, WithoutMinimalityTheMachineFails) {
  // The same machine is NOT a recognizer for 'some (arbitrary) a has a
  // b-child' — the paper's Example 2.7 says no DRA is; exhibit a concrete
  // disagreement: a( a( b ) ... ) where only the nested a has the b-child.
  MinimalAWithBChildMachine machine(kA, kB);
  Alphabet alphabet = Alphabet::FromLetters("abc");
  std::optional<EventStream> events = ParseCompactMarkup(alphabet, "aabBAA");
  ASSERT_TRUE(events.has_value());
  // Ground truth: the inner a has a b-child -> true; the machine pins the
  // outer (minimal) a, whose children are {a}, and reports false.
  EXPECT_FALSE(RunAcceptor(&machine, *events));
}

// Example 2.10: two consecutive siblings with labels a, b are detectable
// by a finite automaton (the closing tag ā immediately followed by the
// opening tag b); three consecutive siblings a, b, c are not even
// stackless, and the natural finite-state candidate is wrong.
class TwoSiblingMachine final : public StreamMachine {
 public:
  void Reset() override {
    last_was_close_a_ = false;
    matched_ = false;
  }
  void OnOpen(Symbol symbol) override {
    if (last_was_close_a_ && symbol == kB) matched_ = true;
    last_was_close_a_ = false;
  }
  void OnClose(Symbol symbol) override { last_was_close_a_ = symbol == kA; }
  bool InAcceptingState() const override { return matched_; }

 private:
  bool last_was_close_a_ = false;
  bool matched_ = false;
};

// The natural — and provably insufficient — candidate for three siblings:
// find ā b, then wait for b̄ c, ignoring whether the b̄ closes *that* b.
class NaiveThreeSiblingMachine final : public StreamMachine {
 public:
  void Reset() override {
    phase_ = 0;
    last_close_ = -1;
    matched_ = false;
  }
  void OnOpen(Symbol symbol) override {
    if (last_close_ == kA && symbol == kB) phase_ = 1;
    if (phase_ == 1 && last_close_ == kB && symbol == kC) matched_ = true;
    last_close_ = -1;
  }
  void OnClose(Symbol symbol) override { last_close_ = symbol; }
  bool InAcceptingState() const override { return matched_; }

 private:
  int phase_ = 0;
  Symbol last_close_ = -1;
  bool matched_ = false;
};

bool HasConsecutiveSiblings(const Tree& tree, std::initializer_list<Symbol>
                                                  labels) {
  std::vector<Symbol> want(labels);
  for (int id = 0; id < tree.size(); ++id) {
    std::vector<Symbol> children;
    for (int c = tree.node(id).first_child; c >= 0;
         c = tree.node(c).next_sibling) {
      children.push_back(tree.label(c));
    }
    for (size_t i = 0; i + want.size() <= children.size(); ++i) {
      bool all = true;
      for (size_t j = 0; j < want.size(); ++j) {
        all = all && children[i + j] == want[j];
      }
      if (all) return true;
    }
  }
  return false;
}

TEST(Example210, TwoConsecutiveSiblingsAreRegisterless) {
  TwoSiblingMachine machine;
  Rng rng(11);
  for (const Tree& tree : testing::SampleTrees(400, 3, &rng)) {
    ASSERT_EQ(RunAcceptor(&machine, Encode(tree)),
              HasConsecutiveSiblings(tree, {kA, kB}));
  }
}

TEST(Example210, NaiveThreeSiblingCandidateFails) {
  // The paper proves no DRA recognizes three consecutive siblings; here is
  // the concrete failure of the natural finite-state attempt: a( b( x ) )
  // followed by sibling c — the b̄ that precedes c closes a *nested* b.
  NaiveThreeSiblingMachine machine;
  Rng rng(13);
  bool found_error = false;
  Tree witness;
  for (const Tree& tree : testing::SampleTrees(2000, 3, &rng)) {
    if (RunAcceptor(&machine, Encode(tree)) !=
        HasConsecutiveSiblings(tree, {kA, kB, kC})) {
      found_error = true;
      witness = tree;
      break;
    }
  }
  ASSERT_TRUE(found_error);
  // The disagreement reproduces on the witness.
  EXPECT_NE(RunAcceptor(&machine, Encode(witness)),
            HasConsecutiveSiblings(witness, {kA, kB, kC}));
}

TEST(Example22, ProductWithRegisterlessStillWorks) {
  // Lemma 2.4 on the library builders: same-depth(a) AND root-children
  // language handled via separate machines composed at the harness level.
  Dra same_depth = BuildSameDepthDra(3, kA);
  DraRunner same_depth_runner(&same_depth);
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa children = CompileRegex("b*", alphabet);
  RootChildrenMachine children_machine(children);
  Rng rng(17);
  for (const Tree& tree : testing::SampleTrees(150, 3, &rng)) {
    EventStream events = Encode(tree);
    bool both = RunAcceptor(&same_depth_runner, events) &&
                RunAcceptor(&children_machine, events);
    // Oracle for the conjunction.
    std::set<int> depths;
    for (int id = 0; id < tree.size(); ++id) {
      if (tree.label(id) == kA) depths.insert(tree.Depth(id));
    }
    Word child_labels;
    for (int c = tree.node(tree.root()).first_child; c >= 0;
         c = tree.node(c).next_sibling) {
      child_labels.push_back(tree.label(c));
    }
    EXPECT_EQ(both, depths.size() <= 1 && children.Accepts(child_labels));
  }
}

}  // namespace
}  // namespace sst
