#include <memory>

#include <gtest/gtest.h>

#include "automata/alphabet.h"
#include "automata/minimize.h"
#include "base/rng.h"
#include "classes/syntactic_classes.h"
#include "dra/machine.h"
#include "dra/tag_dfa.h"
#include "eval/adapters.h"
#include "eval/registerless_query.h"
#include "eval/stack_evaluator.h"
#include "test_util.h"
#include "trees/encoding.h"
#include "trees/ground_truth.h"

namespace sst {
namespace {


TEST(StackEvaluator, MatchesGroundTruthForArbitraryLanguages) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    Dfa dfa = Minimize(RandomDfa(8, 3, 0.4, &rng));
    StackQueryEvaluator machine(&dfa);
    for (const Tree& tree : testing::SampleTrees(20, 3, &rng)) {
      EXPECT_EQ(RunQueryOnTree(&machine, tree), SelectNodes(dfa, tree));
    }
  }
}

TEST(StackEvaluator, TracksPeakStackDepth) {
  Alphabet alphabet = Alphabet::FromLetters("ab");
  Dfa dfa = CompileRegex("a*", alphabet);
  StackQueryEvaluator machine(&dfa);
  Tree chain = ChainTree(Word(50, 0));
  RunQuery(&machine, Encode(chain));
  EXPECT_EQ(machine.max_stack_depth(), 50u);
}

TEST(Lemma35, PaperExampleAStarB) {
  // a Γ* b is almost-reversible; its registerless evaluator must agree with
  // the oracle on every tree.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  ASSERT_TRUE(IsAlmostReversible(dfa));
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  TagDfaMachine machine(&evaluator);
  Rng rng(7);
  for (const Tree& tree : testing::SampleTrees(200, 3, &rng)) {
    EXPECT_EQ(RunQueryOnTree(&machine, tree), SelectNodes(dfa, tree));
  }
}

TEST(Lemma35, RandomAlmostReversibleLanguages) {
  Rng rng(103);
  std::vector<Dfa> languages = testing::SampleLanguages(
      25, 2, [](const Dfa& d) { return IsAlmostReversible(d); }, &rng);
  ASSERT_GE(languages.size(), 5u);
  for (const Dfa& dfa : languages) {
    TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
    TagDfaMachine machine(&evaluator);
    for (const Tree& tree : testing::SampleTrees(30, 2, &rng)) {
      ASSERT_EQ(RunQueryOnTree(&machine, tree), SelectNodes(dfa, tree));
    }
  }
}

TEST(Lemma35, FailsForSomeTreeWhenNotAlmostReversible) {
  // Soundness of the characterization in the other direction: applying the
  // construction to the non-AR language ab must err on some tree (Thm 3.2).
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("ab", alphabet);
  ASSERT_FALSE(IsAlmostReversible(dfa));
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  TagDfaMachine machine(&evaluator);
  Rng rng(5);
  bool found_error = false;
  for (const Tree& tree : testing::SampleTrees(500, 3, &rng)) {
    if (RunQueryOnTree(&machine, tree) != SelectNodes(dfa, tree)) {
      found_error = true;
      break;
    }
  }
  EXPECT_TRUE(found_error);
}

TEST(TheoremB1, BlindVariantRunsOnTermEncoding) {
  Rng rng(107);
  std::vector<Dfa> languages = testing::SampleLanguages(
      20, 2, [](const Dfa& d) { return IsBlindAlmostReversible(d); }, &rng);
  ASSERT_GE(languages.size(), 5u);
  for (const Dfa& dfa : languages) {
    TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/true);
    EXPECT_TRUE(evaluator.ClosingSymbolInvariant());
    TagDfaMachine machine(&evaluator);
    for (const Tree& tree : testing::SampleTrees(30, 2, &rng)) {
      // Run on the label-less close events, as a term-encoded stream.
      ASSERT_EQ(RunQueryOnTree(&machine, tree, /*term_encoded=*/true),
                SelectNodes(dfa, tree));
    }
  }
}

TEST(TheoremB1, BlindAStarBStillWorks) {
  // a Γ* b is blindly almost-reversible (Section 4.2).
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  ASSERT_TRUE(IsBlindAlmostReversible(dfa));
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/true);
  TagDfaMachine machine(&evaluator);
  Rng rng(9);
  for (const Tree& tree : testing::SampleTrees(200, 3, &rng)) {
    EXPECT_EQ(RunQueryOnTree(&machine, tree, /*term_encoded=*/true),
              SelectNodes(dfa, tree));
  }
}

TEST(Adapters, ExistsAndForallMatchGroundTruths) {
  // Theorem 3.1/3.2 outlines: wrapping any QL realizer watches the leaves.
  Rng rng(109);
  for (int trial = 0; trial < 15; ++trial) {
    Dfa dfa = Minimize(RandomDfa(7, 2, 0.4, &rng));
    auto exists = ExistsAdapter(
        std::make_unique<StackQueryEvaluator>(&dfa));
    auto forall = ForallAdapter(
        std::make_unique<StackQueryEvaluator>(&dfa));
    for (const Tree& tree : testing::SampleTrees(30, 2, &rng)) {
      EventStream events = Encode(tree);
      EXPECT_EQ(RunAcceptor(&exists, events), TreeInExists(dfa, tree));
      EXPECT_EQ(RunAcceptor(&forall, events), TreeInForall(dfa, tree));
    }
  }
}

TEST(Adapters, RegisterlessQueryYieldsRegisterlessExistsForall) {
  // For an AR language, wrapping the Lemma 3.5 automaton in the adapters
  // gives correct EL and AL recognizers, confirming (3a) => (3b) of Thm 3.2.
  Alphabet alphabet = Alphabet::FromLetters("abc");
  Dfa dfa = CompileRegex("a.*b", alphabet);
  TagDfa evaluator = BuildRegisterlessQueryAutomaton(dfa, /*blind=*/false);
  ExistsAdapter exists(std::make_unique<TagDfaMachine>(&evaluator));
  ForallAdapter forall(std::make_unique<TagDfaMachine>(&evaluator));
  Rng rng(11);
  for (const Tree& tree : testing::SampleTrees(150, 3, &rng)) {
    EventStream events = Encode(tree);
    EXPECT_EQ(RunAcceptor(&exists, events), TreeInExists(dfa, tree));
    EXPECT_EQ(RunAcceptor(&forall, events), TreeInForall(dfa, tree));
  }
}

}  // namespace
}  // namespace sst
